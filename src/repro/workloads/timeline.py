"""Declarative dynamic-scenario timelines.

The paper's experiments draw a scenario once and hold it fixed; real cloud
load *moves* — rates ramp through the day, bursts land, VMs drift slow and
recover.  A :class:`Timeline` describes that movement declaratively:

* events are anchored at ``"+2h"``-style offsets (:func:`parse_time`,
  :func:`parse_duration`) or plain seconds;
* numeric fields may be distribution *specs* (``{"value": 3}`` or
  ``{"distribution": "uniform", "min": 1, "max": 5}``) sampled at compile
  time from seeded streams (:func:`sample_from_spec`);
* :meth:`Timeline.compile` lowers the description deterministically into
  engine inputs: a :class:`TimelineArrivals` process (piecewise rates,
  linear ramps and burst batches, sampled by exact inversion of the
  cumulative rate), a validated fault plan
  (:class:`~repro.cloud.faults.VmFailure` / ``VmSlowdown`` events), and
  runtime :class:`Trigger` conditions for the MAPE-K loop
  (:mod:`repro.cloud.control`).

Determinism contract: compilation never reads a wall clock, and every
sampled field draws from ``spawn_rng(seed, "timeline/<entry index>")`` —
so the same ``(timeline, seed)`` pair always lowers to the bit-identical
event trace, and adding an entry never perturbs the draws of the others.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.rng import spawn_rng
from repro.workloads.arrivals import ArrivalProcess

#: duration-string units, in seconds.
_UNIT_SECONDS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)\s*([smhd]?)$")

#: metrics a Trigger may condition on (computed by the control loop's
#: Monitor phase each cadence tick).
MONITOR_METRICS = (
    "mean_backlog",
    "max_backlog",
    "imbalance",
    "dead_vms",
    "pending",
    "active_vms",
)
#: actions a fired Trigger may request from the Execute phase.
TRIGGER_ACTIONS = ("rebalance", "scale_up", "scale_down")
_TRIGGER_OPS = (">", ">=", "<", "<=")


def parse_duration(value: "str | float | int") -> float:
    """Parse a duration into seconds.

    Accepts plain non-negative numbers (seconds) or strings with a unit
    suffix — ``"45s"``, ``"30m"``, ``"2h"``, ``"1d"``, ``"1.5h"`` — plus
    bare numeric strings (seconds).
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        seconds = float(value)
    elif isinstance(value, str):
        match = _DURATION_RE.match(value.strip())
        if not match:
            raise ValueError(f"invalid duration {value!r} (expected e.g. '30m', '2h')")
        seconds = float(match.group(1)) * _UNIT_SECONDS[match.group(2) or "s"]
    else:
        raise TypeError(f"duration must be a number or string, got {value!r}")
    if not math.isfinite(seconds) or seconds < 0:
        raise ValueError(f"duration must be finite and non-negative, got {value!r}")
    return seconds


def parse_time(value: "str | float | int") -> float:
    """Parse a timeline instant into seconds from the run start.

    ``"+2h"`` means two hours after t=0 (the descheduler-style offset
    form); bare numbers and unit strings are read as offsets too, so
    ``parse_time(90)``, ``parse_time("90s")`` and ``parse_time("+90s")``
    agree.
    """
    if isinstance(value, str) and value.strip().startswith("+"):
        return parse_duration(value.strip()[1:])
    return parse_duration(value)


def sample_from_spec(
    spec: "float | int | Mapping[str, Any]", rng: np.random.Generator
) -> float:
    """Resolve a scalar-or-distribution spec to one float.

    Plain numbers pass through.  Mappings support ``{"value": x}`` and
    ``{"distribution": ..., ...}`` with:

    * ``uniform`` — ``min``/``max`` bounds;
    * ``normal`` — ``mean``/``stddev`` (defaults derived from the bounds),
      clipped into ``[min, max]``;
    * ``exponential`` — ``mean``, clipped into ``[min, max]`` when given.

    Draws come only from ``rng``, so a seeded generator makes the sample
    reproducible.
    """
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return float(spec)
    if not isinstance(spec, Mapping):
        raise TypeError(f"expected a number or distribution mapping, got {spec!r}")
    if "value" in spec:
        return float(spec["value"])
    dist = spec.get("distribution", "uniform")
    lo = float(spec.get("min", 0.0))
    hi = float(spec.get("max", 1.0))
    if not (math.isfinite(lo) and math.isfinite(hi)) or lo > hi:
        raise ValueError(f"distribution bounds must satisfy min <= max, got {spec!r}")
    if dist == "uniform":
        return float(rng.uniform(lo, hi))
    if dist == "normal":
        mean = float(spec.get("mean", (lo + hi) / 2.0))
        stddev = float(spec.get("stddev", (hi - lo) / 6.0))
        if stddev < 0:
            raise ValueError(f"stddev must be non-negative, got {stddev}")
        return float(np.clip(rng.normal(mean, stddev), lo, hi))
    if dist == "exponential":
        mean = float(spec.get("mean", (lo + hi) / 2.0))
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        value = float(rng.exponential(mean))
        if "min" in spec or "max" in spec:
            value = float(np.clip(value, lo, hi))
        return value
    raise ValueError(f"unknown distribution {dist!r}")


def _check_spec(spec: "float | int | Mapping[str, Any]", label: str) -> None:
    """Validate a spec's shape eagerly (sampling happens at compile time)."""
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        if not math.isfinite(float(spec)):
            raise ValueError(f"{label} must be finite, got {spec!r}")
        return
    if not isinstance(spec, Mapping):
        raise TypeError(f"{label} must be a number or distribution mapping, got {spec!r}")
    sample_from_spec(spec, np.random.default_rng(0))  # shape check only


# -- timeline entries --------------------------------------------------------------


@dataclass(frozen=True)
class RateChange:
    """Step the arrival rate to ``rate`` cloudlets/second at ``at``."""

    at: "str | float"
    rate: "float | Mapping[str, Any]"

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_time(self.at))
        _check_spec(self.rate, "rate")


@dataclass(frozen=True)
class RateRamp:
    """Ramp the arrival rate linearly to ``to_rate`` over ``duration``."""

    at: "str | float"
    duration: "str | float"
    to_rate: "float | Mapping[str, Any]"

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_time(self.at))
        object.__setattr__(self, "duration", parse_duration(self.duration))
        if self.duration <= 0:
            raise ValueError(f"ramp duration must be positive, got {self.duration}")
        _check_spec(self.to_rate, "to_rate")


@dataclass(frozen=True)
class Burst:
    """``count`` extra arrivals landing exactly at instant ``at``."""

    at: "str | float"
    count: "int | Mapping[str, Any]"

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_time(self.at))
        _check_spec(self.count, "count")
        if isinstance(self.count, (int, float)) and self.count < 1:
            raise ValueError(f"burst count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class VmFault:
    """VM ``vm_index`` crashes at ``at``; recovers after ``downtime`` if set."""

    at: "str | float"
    vm_index: int
    downtime: "str | float | Mapping[str, Any] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_time(self.at))
        if self.vm_index < 0:
            raise ValueError(f"vm_index must be non-negative, got {self.vm_index}")
        if self.downtime is not None:
            if isinstance(self.downtime, str):
                object.__setattr__(self, "downtime", parse_duration(self.downtime))
            _check_spec(self.downtime, "downtime")


@dataclass(frozen=True)
class Drift:
    """VM ``vm_index`` straggles: MIPS × ``factor`` for ``duration``."""

    at: "str | float"
    vm_index: int
    duration: "str | float | Mapping[str, Any]"
    factor: "float | Mapping[str, Any]"

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_time(self.at))
        if self.vm_index < 0:
            raise ValueError(f"vm_index must be non-negative, got {self.vm_index}")
        if isinstance(self.duration, str):
            object.__setattr__(self, "duration", parse_duration(self.duration))
        _check_spec(self.duration, "duration")
        _check_spec(self.factor, "factor")


@dataclass(frozen=True)
class Trigger:
    """A conditional event: when ``metric op threshold``, fire ``action``.

    Evaluated at runtime by the MAPE-K loop's Monitor/Analyze phases (not
    at compile time — the condition depends on live simulation state).
    ``once=True`` (the default) disarms the trigger after its first firing.
    """

    metric: str
    op: str
    threshold: float
    action: str
    once: bool = True

    def __post_init__(self) -> None:
        if self.metric not in MONITOR_METRICS:
            raise ValueError(
                f"unknown trigger metric {self.metric!r}; expected one of "
                f"{MONITOR_METRICS}"
            )
        if self.op not in _TRIGGER_OPS:
            raise ValueError(f"unknown trigger op {self.op!r}; expected one of {_TRIGGER_OPS}")
        if self.action not in TRIGGER_ACTIONS:
            raise ValueError(
                f"unknown trigger action {self.action!r}; expected one of "
                f"{TRIGGER_ACTIONS}"
            )
        if not math.isfinite(float(self.threshold)):
            raise ValueError(f"trigger threshold must be finite, got {self.threshold}")

    def holds(self, value: float) -> bool:
        """Evaluate the condition against a monitored metric value."""
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold


TimelineEntry = RateChange | RateRamp | Burst | VmFault | Drift

_ENTRY_KINDS: dict[str, type] = {
    "rate-change": RateChange,
    "rate-ramp": RateRamp,
    "burst": Burst,
    "vm-fault": VmFault,
    "drift": Drift,
}
_KIND_OF = {cls: kind for kind, cls in _ENTRY_KINDS.items()}


# -- the timeline ------------------------------------------------------------------


@dataclass(frozen=True)
class Timeline:
    """A declarative dynamic scenario: arrival dynamics + fault storms.

    Parameters
    ----------
    base_rate:
        Arrival rate (cloudlets/second) at t=0.  Required when any rate or
        burst entry is present; ``None`` leaves arrivals to the caller
        (the timeline then only drives faults and triggers).
    entries:
        Timeline events, in any order (sorted at compile time).
    triggers:
        Conditional events evaluated at runtime by the control loop.
    name:
        Label recorded in manifests and reports.
    """

    base_rate: float | None = None
    entries: tuple[TimelineEntry, ...] = ()
    triggers: tuple[Trigger, ...] = ()
    name: str = "timeline"

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        object.__setattr__(self, "triggers", tuple(self.triggers))
        for entry in self.entries:
            if not isinstance(entry, (RateChange, RateRamp, Burst, VmFault, Drift)):
                raise TypeError(f"unknown timeline entry {entry!r}")
        for trigger in self.triggers:
            if not isinstance(trigger, Trigger):
                raise TypeError(f"unknown trigger {trigger!r}")
        drives_arrivals = any(
            isinstance(e, (RateChange, RateRamp, Burst)) for e in self.entries
        )
        if self.base_rate is None:
            if drives_arrivals:
                raise ValueError(
                    "timeline has rate/burst entries but no base_rate; arrival "
                    "dynamics need a starting rate"
                )
        else:
            if not math.isfinite(self.base_rate) or self.base_rate <= 0:
                raise ValueError(
                    f"base_rate must be positive and finite, got {self.base_rate}"
                )

    @property
    def fault_entries(self) -> tuple[TimelineEntry, ...]:
        return tuple(e for e in self.entries if isinstance(e, (VmFault, Drift)))

    def without_faults(self) -> "Timeline":
        """The same timeline with VM fault/drift entries removed.

        Used as the calm baseline arm of storm comparisons: identical
        arrival dynamics, no injected failures.
        """
        calm = tuple(e for e in self.entries if not isinstance(e, (VmFault, Drift)))
        return replace(self, entries=calm, name=f"{self.name}-calm")

    # -- compilation ---------------------------------------------------------------

    def compile(self, num_vms: int, seed: int | None = 0) -> "CompiledTimeline":
        """Lower the timeline into engine inputs, deterministically.

        Every distribution-specified field of entry ``i`` is sampled from
        ``spawn_rng(seed, f"timeline/{i}")``, so entries own independent
        streams and insertion order never couples their draws.  Rate
        entries become a piecewise-linear rate profile (overlapping ramps
        are rejected); fault entries become a plan accepted by
        :func:`~repro.cloud.faults.validate_fault_plan`.
        """
        from repro.cloud.faults import FaultEvent, VmFailure, VmSlowdown, validate_fault_plan

        if num_vms < 1:
            raise ValueError(f"num_vms must be >= 1, got {num_vms}")
        rate_events: list[tuple[float, float, float]] = []  # (at, duration, to_rate)
        bursts: list[tuple[float, int]] = []
        plan: list[FaultEvent] = []
        for i, entry in enumerate(self.entries):
            rng = spawn_rng(seed, f"timeline/{i}") if seed is not None else np.random.default_rng()
            if isinstance(entry, RateChange):
                rate = sample_from_spec(entry.rate, rng)
                if rate <= 0:
                    raise ValueError(f"entry {i}: sampled rate must be positive, got {rate}")
                rate_events.append((float(entry.at), 0.0, rate))
            elif isinstance(entry, RateRamp):
                rate = sample_from_spec(entry.to_rate, rng)
                if rate <= 0:
                    raise ValueError(f"entry {i}: sampled to_rate must be positive, got {rate}")
                rate_events.append((float(entry.at), float(entry.duration), rate))
            elif isinstance(entry, Burst):
                count = int(round(sample_from_spec(entry.count, rng)))
                if count < 1:
                    raise ValueError(f"entry {i}: sampled burst count must be >= 1, got {count}")
                bursts.append((float(entry.at), count))
            elif isinstance(entry, VmFault):
                downtime = (
                    None
                    if entry.downtime is None
                    else sample_from_spec(entry.downtime, rng)
                )
                plan.append(VmFailure(entry.vm_index, float(entry.at), downtime))
            else:  # Drift
                duration = sample_from_spec(entry.duration, rng)
                factor = sample_from_spec(entry.factor, rng)
                plan.append(
                    VmSlowdown(entry.vm_index, float(entry.at), duration, factor)
                )

        arrivals = None
        if self.base_rate is not None:
            arrivals = TimelineArrivals(
                _build_rate_pieces(self.base_rate, rate_events),
                tuple(sorted(bursts)),
            )
        return CompiledTimeline(
            name=self.name,
            arrivals=arrivals,
            fault_plan=tuple(validate_fault_plan(plan, num_vms)),
            triggers=self.triggers,
        )

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe description (round-trips through :func:`timeline_from_dict`)."""
        entries = []
        for entry in self.entries:
            d: dict[str, Any] = {"kind": _KIND_OF[type(entry)]}
            for name in vars(entry):
                value = getattr(entry, name)
                if value is not None:
                    d[name] = dict(value) if isinstance(value, Mapping) else value
            entries.append(d)
        return {
            "name": self.name,
            "base_rate": self.base_rate,
            "entries": entries,
            "triggers": [dict(vars(t)) for t in self.triggers],
        }

    def summary(self) -> dict[str, Any]:
        """Manifest/cache-key payload: the full spec (it *is* the identity)."""
        return self.to_dict()


def timeline_from_dict(data: Mapping[str, Any]) -> Timeline:
    """Rebuild a :class:`Timeline` from :meth:`Timeline.to_dict` output."""
    entries = []
    for d in data.get("entries", ()):
        d = dict(d)
        kind = d.pop("kind", None)
        if kind not in _ENTRY_KINDS:
            raise ValueError(f"unknown timeline entry kind {kind!r}")
        entries.append(_ENTRY_KINDS[kind](**d))
    triggers = [Trigger(**dict(t)) for t in data.get("triggers", ())]
    return Timeline(
        base_rate=data.get("base_rate"),
        entries=tuple(entries),
        triggers=tuple(triggers),
        name=str(data.get("name", "timeline")),
    )


@dataclass(frozen=True)
class CompiledTimeline:
    """A timeline lowered to engine inputs (see :meth:`Timeline.compile`)."""

    name: str
    #: arrival process, or ``None`` when the timeline doesn't drive arrivals.
    arrivals: "TimelineArrivals | None"
    #: validated fault plan for a :class:`~repro.cloud.faults.FaultInjector`.
    fault_plan: tuple
    #: runtime conditions for the control loop.
    triggers: tuple[Trigger, ...]

    @property
    def first_fault_time(self) -> float:
        """Earliest fault instant, or ``nan`` when no faults are planned."""
        if not self.fault_plan:
            return math.nan
        return min(e.at_time for e in self.fault_plan)


# -- the arrival process -----------------------------------------------------------

#: one piece of the rate profile: rate(t) = r0 + slope * (t - start) on
#: [start, end); the final piece has end = inf and slope = 0.
_RatePiece = tuple[float, float, float, float]  # (start, end, r0, slope)


def _build_rate_pieces(
    base_rate: float, rate_events: Sequence[tuple[float, float, float]]
) -> tuple[_RatePiece, ...]:
    """Lower (at, duration, to_rate) events onto a piecewise-linear profile."""
    events = sorted(rate_events)
    pieces: list[_RatePiece] = []
    t, rate = 0.0, float(base_rate)
    for at, duration, to_rate in events:
        if at < t:
            raise ValueError(
                f"rate event at t={at} overlaps the ramp ending at t={t}; "
                "rate events must not overlap"
            )
        if at > t:
            pieces.append((t, at, rate, 0.0))
            t = at
        if duration > 0.0:
            pieces.append((t, t + duration, rate, (to_rate - rate) / duration))
            t += duration
        rate = float(to_rate)
    if rate <= 0:
        raise ValueError(f"final arrival rate must stay positive, got {rate}")
    pieces.append((t, math.inf, rate, 0.0))
    return tuple(pieces)


class TimelineArrivals(ArrivalProcess):
    """Arrivals under a piecewise-linear rate profile plus burst batches.

    The inhomogeneous-Poisson component is sampled by *exact inversion* of
    the cumulative rate: unit-rate exponential increments are mapped
    through Λ⁻¹ piece by piece (closed form on constant and linear
    pieces), so the sample is deterministic given ``rng`` and free of
    thinning rejections.  Burst batches contribute ``count`` arrivals at
    exactly their instant; the first ``n`` arrivals of the merged stream
    are returned.
    """

    def __init__(
        self,
        pieces: Sequence[_RatePiece],
        bursts: Sequence[tuple[float, int]] = (),
    ) -> None:
        if not pieces:
            raise ValueError("rate profile requires at least one piece")
        self.pieces = tuple(pieces)
        self.bursts = tuple(bursts)
        final_start, final_end, final_rate, final_slope = self.pieces[-1]
        if not math.isinf(final_end) or final_slope != 0.0 or final_rate <= 0:
            raise ValueError("final rate piece must be constant, positive and unbounded")

    def _poisson_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        times = np.empty(n)
        piece_idx = 0
        start, end, r0, slope = self.pieces[0]
        t = start
        for i in range(n):
            need = float(rng.exponential(1.0))  # unit-rate increment of Λ
            while True:
                rate_here = r0 + slope * (t - start)
                remaining = end - t
                if slope == 0.0:
                    # Λ gained on the rest of this piece: rate_here * remaining
                    if rate_here > 0 and need <= rate_here * remaining:
                        t += need / rate_here
                        break
                    need -= max(0.0, rate_here) * (0.0 if math.isinf(remaining) else remaining)
                else:
                    # Λ(t..end) = rate_here*Δ + slope*Δ²/2; solve for Δ at `need`
                    gain = rate_here * remaining + 0.5 * slope * remaining * remaining
                    if need <= gain:
                        disc = rate_here * rate_here + 2.0 * slope * need
                        t += (math.sqrt(max(0.0, disc)) - rate_here) / slope
                        break
                    need -= max(0.0, gain)
                piece_idx += 1
                start, end, r0, slope = self.pieces[piece_idx]
                t = start
            times[i] = t
        return times

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self._validate_n(n)
        poisson = self._poisson_times(rng, n)
        if not self.bursts:
            return poisson
        burst_times = np.concatenate(
            [np.full(count, at) for at, count in self.bursts]
        )
        merged = np.sort(np.concatenate([poisson, burst_times]), kind="stable")
        return merged[:n]


__all__ = [
    "parse_duration",
    "parse_time",
    "sample_from_spec",
    "MONITOR_METRICS",
    "TRIGGER_ACTIONS",
    "RateChange",
    "RateRamp",
    "Burst",
    "VmFault",
    "Drift",
    "Trigger",
    "TimelineEntry",
    "Timeline",
    "CompiledTimeline",
    "TimelineArrivals",
    "timeline_from_dict",
]
