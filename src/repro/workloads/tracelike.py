"""Trace-like synthetic workload.

A scenario preset whose statistics mimic published cluster-trace analyses
(Google cluster traces, Reiss et al. 2012): task durations are heavy-tailed
(most tasks are short, a thin tail runs orders of magnitude longer), the
machine fleet is tiered rather than uniform, and demand follows a diurnal
cycle.  Used by the extension experiments as the "realistic" counterpoint
to the paper's uniform Table VI batch; no proprietary trace data is
involved — see DESIGN.md's substitution policy.

Concretely:

* task lengths ~ lognormal with σ≈1.8, clipped to [100 MI, 2·10^6 MI]
  (duration CV of ~5, matching the trace literature's heavy tails);
* VM MIPS drawn from a 3-tier fleet (0.5k/2k/4k at 50/35/15%);
* :func:`diurnal_arrivals_for` pairs the scenario with a matching
  day/night arrival process for the online engine.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.arrivals import DiurnalArrivals
from repro.workloads.spec import ScenarioSpec
from repro.workloads.synthetic import DistributionSpec, SyntheticWorkloadBuilder

#: lognormal parameters for task lengths (MI): median ~e^8.5 ≈ 4.9k MI.
LENGTH_MU = 8.5
LENGTH_SIGMA = 1.8
LENGTH_CLIP = (100.0, 2_000_000.0)

#: the three machine tiers and their fleet shares.
FLEET_TIERS = (500.0, 2000.0, 4000.0)
FLEET_SHARES = (0.50, 0.35, 0.15)


def tracelike_scenario(
    num_vms: int,
    num_cloudlets: int,
    num_datacenters: int = 4,
    seed: int | None = 0,
    name: str | None = None,
) -> ScenarioSpec:
    """Build the trace-like scenario (see module docstring)."""
    if num_vms < 1 or num_cloudlets < 1:
        raise ValueError("num_vms and num_cloudlets must be >= 1")
    # Tiered fleet expressed as a weighted choice: repeat values by share
    # over a fine grid so DistributionSpec("choice") samples the mix.
    grid = []
    for mips, share in zip(FLEET_TIERS, FLEET_SHARES):
        grid.extend([mips] * max(1, round(share * 20)))
    spec = (
        SyntheticWorkloadBuilder(seed=seed)
        .vms(num_vms, mips=DistributionSpec("choice", {"values": grid}))
        .cloudlets(
            num_cloudlets,
            length=DistributionSpec(
                "lognormal", {"mean": LENGTH_MU, "sigma": LENGTH_SIGMA}
            ),
        )
        .datacenters(min(num_datacenters, num_vms))
        .build(name or f"tracelike-{num_vms}vms-{num_cloudlets}cl")
    )
    # Clip the lognormal tail to the documented range.
    import dataclasses

    clipped = tuple(
        dataclasses.replace(
            c, length=float(np.clip(c.length, *LENGTH_CLIP))
        )
        for c in spec.cloudlets
    )
    return dataclasses.replace(spec, cloudlets=clipped)


def diurnal_arrivals_for(
    scenario: ScenarioSpec, mean_utilization: float = 0.6, period: float = 300.0
) -> DiurnalArrivals:
    """An arrival process sized so the fleet runs at ``mean_utilization``.

    The base rate is chosen so that (mean task service time × rate) equals
    ``mean_utilization`` of the fleet's aggregate capacity.
    """
    if not 0 < mean_utilization < 1:
        raise ValueError(
            f"mean_utilization must be in (0, 1), got {mean_utilization}"
        )
    arr = scenario.arrays()
    total_mips = float((arr.vm_mips * arr.vm_pes).sum())
    mean_length = float(arr.cloudlet_length.mean())
    base_rate = mean_utilization * total_mips / mean_length
    return DiurnalArrivals(base_rate=base_rate, period=period, amplitude=0.8)


__all__ = ["tracelike_scenario", "diurnal_arrivals_for"]
