"""Scenario persistence.

Serialises :class:`~repro.workloads.spec.ScenarioSpec` to a single JSON
document so experiments can be frozen, diffed and replayed.  The format is
versioned; loading refuses unknown versions rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.workloads.spec import CloudletSpec, DatacenterSpec, ScenarioSpec, VmSpec

_FORMAT_VERSION = 1


def scenario_to_dict(spec: ScenarioSpec) -> dict:
    """Plain-dict form of a scenario (JSON-serialisable)."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": spec.name,
        "seed": spec.seed,
        "datacenters": [
            {
                "cost_per_mem": d.characteristics.cost_per_mem,
                "cost_per_storage": d.characteristics.cost_per_storage,
                "cost_per_bw": d.characteristics.cost_per_bw,
                "cost_per_cpu": d.characteristics.cost_per_cpu,
                "host_pes": d.host_pes,
                "host_mips": d.host_mips,
                "host_ram": d.host_ram,
                "host_bw": d.host_bw,
                "host_storage": d.host_storage,
            }
            for d in spec.datacenters
        ],
        "vms": [
            {"mips": v.mips, "pes": v.pes, "ram": v.ram, "bw": v.bw, "size": v.size}
            for v in spec.vms
        ],
        "cloudlets": [
            {
                "length": c.length,
                "pes": c.pes,
                "file_size": c.file_size,
                "output_size": c.output_size,
            }
            for c in spec.cloudlets
        ],
        "vm_datacenter": list(spec.vm_datacenter),
    }


def scenario_from_dict(data: dict) -> ScenarioSpec:
    """Inverse of :func:`scenario_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported scenario format version {version!r} (expected {_FORMAT_VERSION})"
        )
    datacenters = tuple(
        DatacenterSpec(
            characteristics=DatacenterCharacteristics(
                cost_per_mem=d["cost_per_mem"],
                cost_per_storage=d["cost_per_storage"],
                cost_per_bw=d["cost_per_bw"],
                cost_per_cpu=d["cost_per_cpu"],
            ),
            host_pes=d["host_pes"],
            host_mips=d["host_mips"],
            host_ram=d["host_ram"],
            host_bw=d["host_bw"],
            host_storage=d["host_storage"],
        )
        for d in data["datacenters"]
    )
    vms = tuple(VmSpec(**v) for v in data["vms"])
    cloudlets = tuple(CloudletSpec(**c) for c in data["cloudlets"])
    return ScenarioSpec(
        name=data["name"],
        datacenters=datacenters,
        vms=vms,
        cloudlets=cloudlets,
        vm_datacenter=tuple(data["vm_datacenter"]),
        seed=data.get("seed"),
    )


def save_scenario(spec: ScenarioSpec, path: str | Path) -> Path:
    """Write a scenario to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(scenario_to_dict(spec), indent=2))
    return path


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Read a scenario previously written by :func:`save_scenario`."""
    data = json.loads(Path(path).read_text())
    return scenario_from_dict(data)


__all__ = ["scenario_to_dict", "scenario_from_dict", "save_scenario", "load_scenario"]
