"""ASCII plotting."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot([1, 2, 3], {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]})
        assert "A=up" in text
        assert "B=down" in text
        lines = text.splitlines()
        assert any("A" in line for line in lines)

    def test_title_and_labels(self):
        text = ascii_plot(
            [1, 2], {"s": [1.0, 2.0]}, title="My Chart", xlabel="x", ylabel="y"
        )
        assert "My Chart" in text
        assert "[x vs y]" in text

    def test_log_scale(self):
        text = ascii_plot(
            [1, 2], {"s": [0.001, 1000.0]}, xlabel="x", ylabel="y", logy=True
        )
        assert "(log y)" in text

    def test_constant_series_does_not_crash(self):
        assert ascii_plot([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})

    def test_single_point(self):
        assert ascii_plot([1], {"dot": [2.0]})

    def test_zero_values_on_log_scale(self):
        assert ascii_plot([1, 2], {"s": [0.0, 10.0]}, logy=True)

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ascii_plot([], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ascii_plot([1, 2], {"s": [1.0]})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {"s": [1.0]}, width=5)

    def test_many_series_cycle_markers(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(14)}
        text = ascii_plot([1, 2], series)
        assert "A=s0" in text
