"""Paper-shape checks on synthetic figure data."""

from __future__ import annotations

from repro.analysis.compare import check_figure, paper_shape_checks
from repro.experiments.figures import FigureData


def make_data(experiment_id, series, x=(50, 150, 250)):
    return FigureData(
        experiment_id=experiment_id,
        title="t",
        xlabel="x",
        ylabel="y",
        x=list(x),
        series={k: list(v) for k, v in series.items()},
        ci={k: [0.0] * len(x) for k in series},
    )


GOOD_FIG6A = {
    "antcolony": [40.0, 35.0, 30.0],
    "honeybee": [50.0, 45.0, 42.0],
    "basetest": [55.0, 50.0, 45.0],
    "rbs": [56.0, 49.0, 46.0],
}

GOOD_FIG6B = {
    "basetest": [1e-5, 1e-5, 1e-5],
    "rbs": [1e-4, 1e-4, 1e-4],
    "honeybee": [1e-3, 1e-3, 1e-3],
    "antcolony": [1e-1, 1e-1, 1e-1],
}

GOOD_FIG6C = {
    "antcolony": [6.0, 6.2, 6.1],
    "honeybee": [5.9, 6.0, 5.8],
    "basetest": [5.0, 5.1, 5.2],
    "rbs": [4.9, 5.0, 5.1],
}

GOOD_FIG6D = {
    "honeybee": [40.0, 41.0, 42.0],
    "antcolony": [60.0, 61.0, 62.0],
    "basetest": [62.0, 63.0, 64.0],
    "rbs": [61.0, 62.0, 63.0],
}


class TestFig6Checks:
    def test_fig6a_pass(self):
        checks = check_figure(make_data("fig6a", GOOD_FIG6A))
        assert checks and all(c.passed for c in checks)

    def test_fig6a_fails_when_aco_not_best(self):
        bad = dict(GOOD_FIG6A)
        bad["antcolony"] = [100.0, 100.0, 100.0]
        checks = check_figure(make_data("fig6a", bad))
        assert any(not c.passed for c in checks)

    def test_fig6b_ordering_pass_and_fail(self):
        assert all(c.passed for c in check_figure(make_data("fig6b", GOOD_FIG6B)))
        bad = dict(GOOD_FIG6B)
        bad["basetest"] = [1.0, 1.0, 1.0]
        assert not all(c.passed for c in check_figure(make_data("fig6b", bad)))

    def test_fig6c_pass(self):
        assert all(c.passed for c in check_figure(make_data("fig6c", GOOD_FIG6C)))

    def test_fig6c_fails_when_aco_lowest(self):
        bad = dict(GOOD_FIG6C)
        bad["antcolony"] = [1.0, 1.0, 1.0]
        assert not all(c.passed for c in check_figure(make_data("fig6c", bad)))

    def test_fig6d_pass_and_fail(self):
        assert all(c.passed for c in check_figure(make_data("fig6d", GOOD_FIG6D)))
        bad = dict(GOOD_FIG6D)
        bad["honeybee"] = [100.0, 100.0, 100.0]
        assert not all(c.passed for c in check_figure(make_data("fig6d", bad)))


class TestFig45Checks:
    def test_fig4_convergence_pass(self):
        series = {
            "basetest": [25.0, 5.0, 3.0],
            "antcolony": [30.0, 5.5, 3.0],
            "honeybee": [25.0, 5.0, 3.0],
            "rbs": [26.0, 5.2, 3.1],
        }
        assert all(c.passed for c in check_figure(make_data("fig4a", series)))

    def test_fig4_fails_on_divergence(self):
        series = {
            "basetest": [25.0, 5.0, 3.0],
            "antcolony": [60.0, 30.0, 20.0],
            "honeybee": [25.0, 5.0, 3.0],
            "rbs": [26.0, 5.2, 3.1],
        }
        assert not all(c.passed for c in check_figure(make_data("fig4b", series)))

    def test_fig5_decision_cost_pass(self):
        series = {
            "basetest": [1e-5, 1e-5, 1e-5],
            "antcolony": [1.0, 1.0, 1.0],
            "honeybee": [0.01, 0.01, 0.01],
            "rbs": [0.001, 0.001, 0.001],
        }
        assert all(c.passed for c in check_figure(make_data("fig5a", series)))


class TestHelpers:
    def test_unknown_figure_returns_empty(self):
        assert check_figure(make_data("fig9z", {"basetest": [1.0, 1.0, 1.0]})) == []

    def test_paper_shape_checks_aggregates(self):
        figures = {
            "fig6a": make_data("fig6a", GOOD_FIG6A),
            "fig6d": make_data("fig6d", GOOD_FIG6D),
        }
        results = paper_shape_checks(figures)
        assert len(results) >= 4
        assert all(r.passed for r in results)

    def test_check_result_str(self):
        checks = check_figure(make_data("fig6a", GOOD_FIG6A))
        assert "[PASS]" in str(checks[0])
