"""ASCII Gantt rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.gantt import gantt_chart
from repro.cloud.fast import FastSimulation
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.schedulers.classics import MinimumExecutionTimeScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


@pytest.fixture(scope="module")
def result():
    scenario = heterogeneous_scenario(6, 40, seed=2)
    return FastSimulation(scenario, RoundRobinScheduler(), seed=2).run()


class TestGantt:
    def test_one_row_per_vm_plus_frame(self, result):
        chart = gantt_chart(result, num_vms=6)
        lines = chart.splitlines()
        vm_lines = [ln for ln in lines if "|" in ln]
        assert len(vm_lines) == 6
        assert "makespan" in lines[0]

    def test_busy_vm_has_marks(self, result):
        chart = gantt_chart(result, num_vms=6)
        assert "#" in chart

    def test_row_for_idle_vm_is_blank(self):
        scenario = heterogeneous_scenario(6, 40, seed=2)
        met = FastSimulation(scenario, MinimumExecutionTimeScheduler(), seed=2).run()
        chart = gantt_chart(met, num_vms=6)
        vm_lines = [ln for ln in chart.splitlines() if "|" in ln]
        blank = [ln for ln in vm_lines if set(ln.split("|")[1]) == {" "}]
        # MET loads one VM; the other five are idle.
        assert len(blank) == 5

    def test_truncation_keeps_extremes(self):
        scenario = heterogeneous_scenario(30, 120, seed=1)
        res = FastSimulation(scenario, GreedyMinCompletionScheduler(), seed=1).run()
        chart = gantt_chart(res, max_rows=6)
        assert "omitted" in chart
        vm_lines = [ln for ln in chart.splitlines() if "|" in ln]
        assert len(vm_lines) == 6

    def test_validation(self, result):
        with pytest.raises(ValueError):
            gantt_chart(result, width=5)
        with pytest.raises(ValueError):
            gantt_chart(result, max_rows=1)

    def test_busy_fraction_matches_exec_time(self, result):
        # Sum of busy bucket fractions approximates total exec per VM.
        chart = gantt_chart(result, num_vms=6, width=60)
        total_marks = sum(
            line.count("#") + 0.5 * line.count("-")
            for line in chart.splitlines()
            if "|" in line
        )
        bucket = result.finish_times.max() / 60
        approx_busy = total_marks * bucket
        true_busy = float(result.exec_times.sum())
        assert approx_busy == pytest.approx(true_busy, rel=0.35)
