"""Queueing formula unit tests."""

from __future__ import annotations

import pytest

from repro.analysis.queueing import (
    erlang_c,
    little_l,
    mm1_mean_number_in_system,
    mm1_mean_sojourn,
    mm1_mean_wait,
    mmc_mean_sojourn,
    mmc_mean_wait,
    utilization,
)


class TestMm1:
    def test_sojourn_formula(self):
        assert mm1_mean_sojourn(0.5, 1.0) == pytest.approx(2.0)

    def test_wait_is_sojourn_minus_service(self):
        assert mm1_mean_wait(0.5, 1.0) == pytest.approx(
            mm1_mean_sojourn(0.5, 1.0) - 1.0
        )

    def test_littles_law_consistency(self):
        lam, mu = 0.7, 1.0
        assert mm1_mean_number_in_system(lam, mu) == pytest.approx(
            little_l(lam, mm1_mean_sojourn(lam, mu))
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            mm1_mean_sojourn(2.0, 1.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            mm1_mean_sojourn(0.0, 1.0)
        with pytest.raises(ValueError):
            utilization(1.0, -1.0)


class TestErlangMmc:
    def test_single_server_reduces_to_mm1(self):
        lam, mu = 0.6, 1.0
        assert mmc_mean_wait(lam, mu, 1) == pytest.approx(mm1_mean_wait(lam, mu))
        assert mmc_mean_sojourn(lam, mu, 1) == pytest.approx(mm1_mean_sojourn(lam, mu))

    def test_erlang_c_known_value(self):
        # Classic table value: c=2, a=1 Erlang -> P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_erlang_c_probability_bounds(self):
        for servers, load in [(1, 0.5), (4, 3.0), (10, 7.5)]:
            p = erlang_c(servers, load)
            assert 0.0 < p < 1.0

    def test_more_servers_less_waiting(self):
        lam, mu = 3.0, 1.0
        assert mmc_mean_wait(lam, mu, 4) < mmc_mean_wait(lam, mu, 5) or (
            mmc_mean_wait(lam, mu, 5) < mmc_mean_wait(lam, mu, 4)
        )
        assert mmc_mean_wait(lam, mu, 8) < mmc_mean_wait(lam, mu, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)
        with pytest.raises(ValueError):
            erlang_c(2, 0.0)
        with pytest.raises(ValueError):
            little_l(0.0, 1.0)
