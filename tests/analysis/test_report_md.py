"""Markdown report generation."""

from __future__ import annotations

import pytest

from repro.analysis.report_md import (
    markdown_checks,
    markdown_figure,
    markdown_report,
    markdown_table,
    write_markdown_report,
)
from repro.experiments.figures import FigureData


@pytest.fixture
def data() -> FigureData:
    return FigureData(
        experiment_id="fig6d",
        title="Processing cost, heterogeneous",
        xlabel="number of virtual machines",
        ylabel="processing cost",
        x=[50, 150, 250],
        series={
            "honeybee": [48000.0, 48500.0, 48700.0],
            "basetest": [63000.0, 63300.0, 63500.0],
            "antcolony": [58000.0, 57900.0, 57800.0],
            "rbs": [62900.0, 63200.0, 63400.0],
        },
        ci={k: [0.0, 0.0, 0.0] for k in ("honeybee", "basetest", "antcolony", "rbs")},
    )


class TestMarkdownTable:
    def test_structure(self, data):
        table = markdown_table(data)
        lines = table.splitlines()
        assert lines[0].startswith("| num_vms |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + 3

    def test_row_limiting_keeps_endpoints(self, data):
        table = markdown_table(data, max_rows=2)
        assert "| 50 |" in table
        assert "| 250 |" in table

    def test_custom_x_key(self, data):
        data.x_key = "slack_factor"
        assert "| slack_factor |" in markdown_table(data)


class TestMarkdownFigure:
    def test_header_and_checks(self, data):
        text = markdown_figure(data)
        assert text.startswith("### fig6d — Processing cost")
        assert "**PASS** `hbo-cheapest`" in text

    def test_checks_report_failures(self, data):
        data.series["honeybee"] = [99999.0, 99999.0, 99999.0]
        assert "**FAIL**" in markdown_checks(data)

    def test_unknown_figure_has_no_checks(self, data):
        data.experiment_id = "ext-custom"
        assert markdown_checks(data) == ""


class TestReport:
    def test_full_document(self, data):
        doc = markdown_report([data], title="Results", preamble="Intro text.")
        assert doc.startswith("# Results")
        assert "Intro text." in doc
        assert doc.endswith("\n")

    def test_write_to_disk(self, data, tmp_path):
        path = write_markdown_report([data], tmp_path / "out" / "report.md")
        assert path.exists()
        assert "fig6d" in path.read_text()
