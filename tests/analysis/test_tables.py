"""Tables and CSV export."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.tables import format_table, write_csv


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        text = format_table([{"v": 3.14159265358979}])
        assert "3.14159" in text

    def test_missing_keys_render_blank(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert text  # no KeyError

    def test_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_bool_and_none(self):
        text = format_table([{"flag": True, "nothing": None}])
        assert "True" in text


class TestWriteCsv:
    def test_writes_and_reads_back(self, tmp_path):
        rows = [{"x": 1, "y": 2.5}, {"x": 3, "y": 4.5}]
        path = write_csv(rows, tmp_path / "out" / "data.csv")
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back[0]["x"] == "1"
        assert back[1]["y"] == "4.5"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")

    def test_column_selection(self, tmp_path):
        path = write_csv([{"a": 1, "b": 2}], tmp_path / "x.csv", columns=["a"])
        assert "b" not in path.read_text()
