"""Result cache: keys, round trips, durability, maintenance."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro._version import __version__
from repro.cache import (
    ENTRY_FORMAT_VERSION,
    ResultCache,
    cache_key_manifest,
    scenario_digest,
)
from repro.experiments.runner import run_point
from repro.obs.manifest import RunManifest
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.random_assign import RandomScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


@pytest.fixture
def scenario():
    return heterogeneous_scenario(4, 16, seed=0)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _store_one(cache, scenario, scheduler=None, seed=0, engine="fast"):
    """Compute one result and publish it; returns (key, result)."""
    scheduler = scheduler or RoundRobinScheduler()
    manifest = cache_key_manifest(scenario, scheduler, seed, engine)
    key = manifest.fingerprint()
    result = run_point(scenario, scheduler, seed=seed, engine=engine)
    assert cache.put(key, result, manifest)
    return key, result


class TestKeys:
    def test_key_is_sha256_hex(self, cache, scenario):
        key = cache.key_for(scenario, RoundRobinScheduler(), 0, "fast")
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_key_stable_across_instances(self, cache, scenario):
        a = cache.key_for(scenario, RoundRobinScheduler(), 0, "fast")
        b = cache.key_for(scenario, RoundRobinScheduler(), 0, "fast")
        assert a == b

    def test_key_varies_with_inputs(self, cache, scenario):
        base = cache.key_for(scenario, RoundRobinScheduler(), 0, "fast")
        assert cache.key_for(scenario, RoundRobinScheduler(), 1, "fast") != base
        assert cache.key_for(scenario, RoundRobinScheduler(), 0, "des") != base
        assert cache.key_for(scenario, RandomScheduler(), 0, "fast") != base

    def test_key_sensitive_to_scenario_content(self, cache):
        # Same name/sizes/seed summary, different workload content.
        a = heterogeneous_scenario(4, 16, seed=0)
        b = heterogeneous_scenario(4, 16, seed=0)
        import dataclasses

        cloudlets = (
            dataclasses.replace(b.cloudlets[0], length=b.cloudlets[0].length * 2),
        ) + b.cloudlets[1:]
        b = dataclasses.replace(b, cloudlets=cloudlets)
        assert scenario_digest(a) != scenario_digest(b)
        assert cache.key_for(a, RoundRobinScheduler(), 0, "fast") != cache.key_for(
            b, RoundRobinScheduler(), 0, "fast"
        )

    def test_scenario_digest_memoized(self, scenario):
        assert scenario_digest(scenario) == scenario_digest(scenario)
        assert getattr(scenario, "_digest_cache", None) is not None

    def test_key_ignores_host_and_time(self, scenario):
        m = cache_key_manifest(scenario, RoundRobinScheduler(), 0, "fast")
        moved = RunManifest.from_dict(
            {**m.to_dict(), "hostname": "elsewhere", "captured_at": "2020-01-01"}
        )
        assert moved.fingerprint() == m.fingerprint()

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(ValueError, match="malformed"):
            cache.entry_dir("not-hex!")


class TestRoundTrip:
    def test_miss_then_hit(self, cache, scenario):
        key, result = _store_one(cache, scenario)
        assert cache.misses == 0
        again = cache.get(key)
        assert again is not None
        assert (cache.hits, cache.misses) == (1, 0)
        assert again.scheduler_name == result.scheduler_name
        assert again.scheduling_time == result.scheduling_time
        assert again.makespan == result.makespan
        np.testing.assert_array_equal(again.assignment, result.assignment)
        np.testing.assert_array_equal(again.finish_times, result.finish_times)
        np.testing.assert_array_equal(again.costs, result.costs)

    def test_get_on_empty_cache_is_miss(self, cache, scenario):
        assert cache.get(cache.key_for(scenario, RoundRobinScheduler(), 0, "fast")) is None
        assert cache.misses == 1

    def test_cached_bit_identical_to_recompute(self, cache, scenario):
        key, _ = _store_one(cache, scenario)
        cached = cache.get(key)
        fresh = run_point(scenario, RoundRobinScheduler(), seed=0, engine="fast")
        # Everything except wall-clock fields matches a recomputation
        # exactly; the wall clock replays the *cold* run's measurement.
        assert cached.makespan == fresh.makespan
        assert cached.time_imbalance == fresh.time_imbalance
        assert cached.total_cost == fresh.total_cost
        np.testing.assert_array_equal(cached.assignment, fresh.assignment)
        np.testing.assert_array_equal(cached.start_times, fresh.start_times)
        np.testing.assert_array_equal(cached.finish_times, fresh.finish_times)

    def test_len_and_iter_keys(self, cache, scenario):
        assert len(cache) == 0
        key, _ = _store_one(cache, scenario)
        assert list(cache.iter_keys()) == [key]
        assert len(cache) == 1

    def test_coerce(self, cache, tmp_path):
        assert ResultCache.coerce(None) is None
        assert ResultCache.coerce(cache) is cache
        coerced = ResultCache.coerce(tmp_path / "other")
        assert isinstance(coerced, ResultCache)


class TestCorruptionTolerance:
    def test_truncated_npz_is_miss_and_rewritable(self, cache, scenario):
        key, result = _store_one(cache, scenario)
        arrays = cache.entry_dir(key) / "arrays.npz"
        arrays.write_bytes(arrays.read_bytes()[:20])
        assert cache.get(key) is None
        assert cache.misses == 1
        # The recompute path replaces the damaged entry in place.
        assert cache.put(key, result)
        assert cache.get(key) is not None

    def test_unparsable_meta_is_miss(self, cache, scenario):
        key, _ = _store_one(cache, scenario)
        (cache.entry_dir(key) / "meta.json").write_text("{not json")
        assert cache.get(key) is None

    def test_missing_array_member_is_miss(self, cache, scenario):
        key, result = _store_one(cache, scenario)
        np.savez_compressed(
            cache.entry_dir(key) / "arrays.npz", assignment=result.assignment
        )
        assert cache.get(key) is None

    def test_foreign_entry_format_is_miss(self, cache, scenario):
        key, _ = _store_one(cache, scenario)
        meta_path = cache.entry_dir(key) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["entry_format"] = ENTRY_FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        assert cache.get(key) is None

    def test_package_version_bump_invalidates(self, cache, scenario):
        # The version is part of the fingerprint, so a bump changes every
        # key; the read path double-checks anyway for hand-moved entries.
        key, _ = _store_one(cache, scenario)
        meta_path = cache.entry_dir(key) / "meta.json"
        meta = json.loads(meta_path.read_text())
        assert meta["package_version"] == __version__
        meta["package_version"] = "0.0.0-older"
        meta_path.write_text(json.dumps(meta))
        assert cache.get(key) is None

    def test_version_bump_changes_fingerprint(self, cache, scenario):
        m = cache_key_manifest(scenario, RoundRobinScheduler(), 0, "fast")
        bumped = RunManifest.from_dict({**m.to_dict(), "package_version": "99.0.0"})
        assert bumped.fingerprint() != m.fingerprint()


class TestConcurrency:
    def test_replacing_put_keeps_entry_complete(self, cache, scenario):
        key, result = _store_one(cache, scenario)
        assert cache.put(key, result)  # second publish replaces atomically
        entry = cache.entry_dir(key)
        assert sorted(p.name for p in entry.iterdir()) == ["arrays.npz", "meta.json"]
        assert cache.get(key) is not None

    def test_concurrent_writers_never_interleave(self, cache, scenario):
        # Hammer the same key from several threads while readers poll;
        # atomic rename publication means a reader sees either nothing or
        # a complete, loadable entry — never a partial one.
        manifest = cache_key_manifest(scenario, RoundRobinScheduler(), 0, "fast")
        key = manifest.fingerprint()
        result = run_point(scenario, RoundRobinScheduler(), seed=0, engine="fast")
        stop = threading.Event()
        bad: list[str] = []

        def writer():
            while not stop.is_set():
                cache.put(key, result, manifest)

        def reader():
            mine = ResultCache(cache.root)  # independent counters
            while not stop.is_set():
                got = mine.get(key)
                if got is not None and got.assignment.shape != result.assignment.shape:
                    bad.append("partial entry observed")

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert bad == []
        assert cache.get(key) is not None

    def test_no_staging_leftovers_after_put(self, cache, scenario):
        _store_one(cache, scenario)
        tmp = cache.root / "tmp"
        assert not tmp.exists() or list(tmp.iterdir()) == []


class TestMaintenance:
    def test_stats(self, cache, scenario):
        _store_one(cache, scenario)
        _store_one(cache, scenario, seed=1)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.by_version == {__version__: 2}
        assert stats.to_dict()["entries"] == 2

    def test_verify_clean(self, cache, scenario):
        _store_one(cache, scenario)
        assert cache.verify() == []

    def test_verify_flags_mismatched_fingerprint(self, cache, scenario):
        key, _ = _store_one(cache, scenario)
        meta_path = cache.entry_dir(key) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["manifest"]["seed"] = 12345  # tamper: key no longer derivable
        meta_path.write_text(json.dumps(meta))
        problems = cache.verify()
        assert len(problems) == 1
        assert "fingerprints to" in problems[0]

    def test_verify_flags_misfiled_entry(self, cache, scenario):
        key, _ = _store_one(cache, scenario)
        meta_path = cache.entry_dir(key) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["key"] = "0" * 64
        meta_path.write_text(json.dumps(meta))
        assert any("mismatches" in p for p in cache.verify())

    def test_prune_collects_corrupt_and_foreign(self, cache, scenario):
        good, _ = _store_one(cache, scenario)
        bad, _ = _store_one(cache, scenario, seed=1)
        (cache.entry_dir(bad) / "meta.json").write_text("{broken")
        foreign, _ = _store_one(cache, scenario, seed=2)
        meta_path = cache.entry_dir(foreign) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["package_version"] = "0.0.1"
        meta_path.write_text(json.dumps(meta))
        report = cache.prune()
        assert report.removed == 2
        assert report.freed_bytes > 0
        assert list(cache.iter_keys()) == [good] or len(cache) == 1

    def test_prune_max_bytes_evicts_oldest(self, cache, scenario):
        import os

        keys = [
            _store_one(cache, scenario, seed=s)[0] for s in range(3)
        ]
        # Make the first entry unambiguously the oldest.
        for i, key in enumerate(keys):
            os.utime(cache.entry_dir(key), (1000.0 + i, 1000.0 + i))
        report = cache.prune(max_bytes=2 * cache.bytes_written // 3)
        assert report.removed >= 1
        assert cache.get(keys[0]) is None  # oldest evicted first
        assert cache.get(keys[-1]) is not None  # newest survives

    def test_prune_sweeps_stale_staging(self, cache, scenario):
        _store_one(cache, scenario)
        stale = cache.root / "tmp" / "deadbeef.1234.0"
        stale.mkdir(parents=True)
        (stale / "meta.json").write_text("{}")
        cache.prune()
        assert not stale.exists()


class TestTelemetry:
    def test_counters_emitted_when_enabled(self, cache, scenario):
        from repro.obs.telemetry import TELEMETRY

        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            key, _ = _store_one(cache, scenario)
            cache.get(key)
            cache.get("f" * 64)
            counters = TELEMETRY.snapshot().counters
            assert counters["cache.hits"] == 1
            assert counters["cache.misses"] == 1
            assert counters["cache.bytes_written"] > 0
            assert counters["cache.bytes_read"] > 0
        finally:
            TELEMETRY.reset()
            TELEMETRY.disable()
