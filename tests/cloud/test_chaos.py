"""Chaos harness: plan generation and the full recovery-comparison suite."""

from __future__ import annotations

import pytest

from repro.cloud.chaos import ChaosConfig, generate_fault_plan, run_chaos_suite
from repro.cloud.faults import HostFailure, VmFailure, VmSlowdown, validate_fault_plan
from repro.core.rng import spawn_rng
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


class TestChaosConfig:
    def test_defaults_valid(self):
        config = ChaosConfig()
        assert config.num_anchors == 2

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError, match="factor_window"):
            ChaosConfig(factor_window=(0.5, 1.0))
        with pytest.raises(ValueError, match="fault_window"):
            ChaosConfig(fault_window=(0.0, 0.5))
        with pytest.raises(ValueError, match="recover_fraction"):
            ChaosConfig(recover_fraction=1.5)


class TestGenerateFaultPlan:
    def _scenario(self):
        return heterogeneous_scenario(8, 40, seed=0)

    def test_plan_is_valid_and_sized(self):
        scenario = self._scenario()
        config = ChaosConfig(
            num_vm_failures=2, num_host_failures=1, num_stragglers=2
        )
        plan = generate_fault_plan(
            scenario, 100.0, config, spawn_rng(0, "chaos-test")
        )
        assert len(plan) == 5
        validate_fault_plan(plan, scenario.num_vms)
        assert sum(isinstance(e, VmFailure) for e in plan) == 2
        assert sum(isinstance(e, HostFailure) for e in plan) == 1
        assert sum(isinstance(e, VmSlowdown) for e in plan) == 2
        # Disjoint anchors by construction.
        anchors = [e.vm_index for e in plan]
        assert len(set(anchors)) == len(anchors)

    def test_seeded_reproducibility(self):
        scenario = self._scenario()
        config = ChaosConfig(num_vm_failures=2, num_stragglers=1)
        a = generate_fault_plan(scenario, 50.0, config, spawn_rng(3, "c"))
        b = generate_fault_plan(scenario, 50.0, config, spawn_rng(3, "c"))
        assert a == b

    def test_recover_fraction_controls_downtimes(self):
        scenario = self._scenario()
        config = ChaosConfig(num_vm_failures=4, num_stragglers=0, recover_fraction=0.5)
        plan = generate_fault_plan(scenario, 80.0, config, spawn_rng(1, "c"))
        downtimes = [e.downtime is not None for e in plan]
        assert sum(downtimes) == 2

    def test_whole_fleet_crash_rejected(self):
        scenario = heterogeneous_scenario(4, 10, seed=0)
        config = ChaosConfig(num_vm_failures=4, num_stragglers=0)
        with pytest.raises(ValueError, match="survive"):
            generate_fault_plan(scenario, 10.0, config, spawn_rng(0, "c"))

    def test_empty_config_gives_empty_plan(self):
        config = ChaosConfig(num_vm_failures=0, num_stragglers=0)
        plan = generate_fault_plan(self._scenario(), 10.0, config, spawn_rng(0, "c"))
        assert plan == []


class TestRunChaosSuite:
    def test_suite_completes_and_compares(self):
        scenario = heterogeneous_scenario(6, 48, seed=2)
        schedulers = {
            "rr": RoundRobinScheduler(),
            "greedy": GreedyMinCompletionScheduler(),
        }
        config = ChaosConfig(num_vm_failures=1, num_stragglers=1, recover_fraction=0.0)
        report = run_chaos_suite(
            scenario, schedulers, seeds=(0, 1), config=config
        )
        assert len(report.cells) == 4
        for cell in report.cells:
            # The seeded crash+straggler plan completes every cloudlet (or
            # dead-letters deterministically; with 5 surviving VMs nothing
            # should be abandoned here).
            assert cell.rescheduling_recovery.completed_fraction == 1.0
            assert cell.round_robin_recovery.completed_fraction == 1.0
            assert cell.plan_size == 2
            # Faults never make the run faster than its own baseline.
            assert cell.rescheduling_recovery.makespan_degradation >= 0.999
        degradation = report.mean_degradation("rescheduling")
        assert set(degradation) == {"rr", "greedy"}
        rows = report.to_rows()
        assert len(rows) == 4
        assert {"scheduler", "seed", "rr_degradation", "resched_degradation"} <= set(rows[0])

    def test_same_seed_same_plan_across_schedulers(self):
        scenario = heterogeneous_scenario(6, 30, seed=0)
        report = run_chaos_suite(
            scenario,
            {"rr": RoundRobinScheduler(), "greedy": GreedyMinCompletionScheduler()},
            seeds=(4,),
            config=ChaosConfig(num_vm_failures=1, num_stragglers=1),
        )
        a, b = report.cells
        assert a.plan_size == b.plan_size
        # Identical faults injected: both runs report the same failure count.
        assert a.rescheduling.info["failures"] == b.rescheduling.info["failures"]

    def test_suite_is_reproducible(self):
        scenario = heterogeneous_scenario(5, 25, seed=1)
        kwargs = dict(
            schedulers={"rr": RoundRobinScheduler()},
            seeds=(0,),
            config=ChaosConfig(num_vm_failures=1, num_stragglers=0),
        )
        r1 = run_chaos_suite(scenario, **kwargs)
        r2 = run_chaos_suite(scenario, **kwargs)
        c1, c2 = r1.cells[0], r2.cells[0]
        assert c1.rescheduling.makespan == c2.rescheduling.makespan
        assert c1.rescheduling_recovery == c2.rescheduling_recovery
