"""Chaos harness: plan generation and the full recovery-comparison suite."""

from __future__ import annotations

import json
import math

import pytest

from repro.cloud.chaos import (
    ChaosConfig,
    demo_storm_timeline,
    generate_fault_plan,
    load_report_rows,
    run_chaos_suite,
    run_storm_suite,
)
from repro.cloud.control import ControlConfig
from repro.cloud.faults import HostFailure, VmFailure, VmSlowdown, validate_fault_plan
from repro.core.rng import spawn_rng
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.schedulers.online import OnlineGreedyMCT
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.timeline import Timeline


class TestChaosConfig:
    def test_defaults_valid(self):
        config = ChaosConfig()
        assert config.num_anchors == 2

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError, match="factor_window"):
            ChaosConfig(factor_window=(0.5, 1.0))
        with pytest.raises(ValueError, match="fault_window"):
            ChaosConfig(fault_window=(0.0, 0.5))
        with pytest.raises(ValueError, match="recover_fraction"):
            ChaosConfig(recover_fraction=1.5)


class TestGenerateFaultPlan:
    def _scenario(self):
        return heterogeneous_scenario(8, 40, seed=0)

    def test_plan_is_valid_and_sized(self):
        scenario = self._scenario()
        config = ChaosConfig(
            num_vm_failures=2, num_host_failures=1, num_stragglers=2
        )
        plan = generate_fault_plan(
            scenario, 100.0, config, spawn_rng(0, "chaos-test")
        )
        assert len(plan) == 5
        validate_fault_plan(plan, scenario.num_vms)
        assert sum(isinstance(e, VmFailure) for e in plan) == 2
        assert sum(isinstance(e, HostFailure) for e in plan) == 1
        assert sum(isinstance(e, VmSlowdown) for e in plan) == 2
        # Disjoint anchors by construction.
        anchors = [e.vm_index for e in plan]
        assert len(set(anchors)) == len(anchors)

    def test_seeded_reproducibility(self):
        scenario = self._scenario()
        config = ChaosConfig(num_vm_failures=2, num_stragglers=1)
        a = generate_fault_plan(scenario, 50.0, config, spawn_rng(3, "c"))
        b = generate_fault_plan(scenario, 50.0, config, spawn_rng(3, "c"))
        assert a == b

    def test_recover_fraction_controls_downtimes(self):
        scenario = self._scenario()
        config = ChaosConfig(num_vm_failures=4, num_stragglers=0, recover_fraction=0.5)
        plan = generate_fault_plan(scenario, 80.0, config, spawn_rng(1, "c"))
        downtimes = [e.downtime is not None for e in plan]
        assert sum(downtimes) == 2

    def test_whole_fleet_crash_rejected(self):
        scenario = heterogeneous_scenario(4, 10, seed=0)
        config = ChaosConfig(num_vm_failures=4, num_stragglers=0)
        with pytest.raises(ValueError, match="survive"):
            generate_fault_plan(scenario, 10.0, config, spawn_rng(0, "c"))

    def test_empty_config_gives_empty_plan(self):
        config = ChaosConfig(num_vm_failures=0, num_stragglers=0)
        plan = generate_fault_plan(self._scenario(), 10.0, config, spawn_rng(0, "c"))
        assert plan == []


class TestRunChaosSuite:
    def test_suite_completes_and_compares(self):
        scenario = heterogeneous_scenario(6, 48, seed=2)
        schedulers = {
            "rr": RoundRobinScheduler(),
            "greedy": GreedyMinCompletionScheduler(),
        }
        config = ChaosConfig(num_vm_failures=1, num_stragglers=1, recover_fraction=0.0)
        report = run_chaos_suite(
            scenario, schedulers, seeds=(0, 1), config=config
        )
        assert len(report.cells) == 4
        for cell in report.cells:
            # The seeded crash+straggler plan completes every cloudlet (or
            # dead-letters deterministically; with 5 surviving VMs nothing
            # should be abandoned here).
            assert cell.rescheduling_recovery.completed_fraction == 1.0
            assert cell.round_robin_recovery.completed_fraction == 1.0
            assert cell.plan_size == 2
            # Faults never make the run faster than its own baseline.
            assert cell.rescheduling_recovery.makespan_degradation >= 0.999
        degradation = report.mean_degradation("rescheduling")
        assert set(degradation) == {"rr", "greedy"}
        rows = report.to_rows()
        assert len(rows) == 4
        assert {"scheduler", "seed", "rr_degradation", "resched_degradation"} <= set(rows[0])

    def test_same_seed_same_plan_across_schedulers(self):
        scenario = heterogeneous_scenario(6, 30, seed=0)
        report = run_chaos_suite(
            scenario,
            {"rr": RoundRobinScheduler(), "greedy": GreedyMinCompletionScheduler()},
            seeds=(4,),
            config=ChaosConfig(num_vm_failures=1, num_stragglers=1),
        )
        a, b = report.cells
        assert a.plan_size == b.plan_size
        # Identical faults injected: both runs report the same failure count.
        assert a.rescheduling.info["failures"] == b.rescheduling.info["failures"]

    def test_suite_is_reproducible(self):
        scenario = heterogeneous_scenario(5, 25, seed=1)
        kwargs = dict(
            schedulers={"rr": RoundRobinScheduler()},
            seeds=(0,),
            config=ChaosConfig(num_vm_failures=1, num_stragglers=0),
        )
        r1 = run_chaos_suite(scenario, **kwargs)
        r2 = run_chaos_suite(scenario, **kwargs)
        c1, c2 = r1.cells[0], r2.cells[0]
        assert c1.rescheduling.makespan == c2.rescheduling.makespan
        assert c1.rescheduling_recovery == c2.rescheduling_recovery


class TestHardening:
    """Validation added for PR 6: bad windows/plans fail fast and clearly."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_window": (math.nan, 0.5)},
            {"fault_window": (0.1, math.inf)},
            {"downtime_window": (0.3, 0.1)},
            {"duration_window": (-0.2, 0.4)},
            {"factor_window": (0.2, math.nan)},
            {"factor_window": (0.6, 0.2)},
        ],
    )
    def test_non_finite_or_inverted_windows_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(**kwargs)

    @pytest.mark.parametrize("baseline", [0.0, -1.0, math.nan, math.inf])
    def test_degenerate_baseline_rejected(self, baseline):
        scenario = heterogeneous_scenario(6, 30, seed=0)
        with pytest.raises(ValueError, match="baseline makespan"):
            generate_fault_plan(
                scenario, baseline, ChaosConfig(), spawn_rng(0, "chaos-test")
            )

    @pytest.mark.parametrize("bad_time", [math.nan, math.inf, -1.0])
    def test_fault_events_reject_non_finite_times(self, bad_time):
        with pytest.raises(ValueError):
            VmFailure(0, bad_time)
        with pytest.raises(ValueError):
            VmSlowdown(0, bad_time, duration=1.0, factor=0.5)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, 0.0])
    def test_downtime_and_duration_must_be_finite_positive(self, bad):
        with pytest.raises(ValueError):
            VmFailure(0, 1.0, downtime=bad)
        with pytest.raises(ValueError):
            VmSlowdown(0, 1.0, duration=bad, factor=0.5)

    def test_overlapping_anchor_downtimes_rejected(self):
        plan = [VmFailure(0, 1.0, downtime=10.0), VmFailure(0, 5.0, downtime=2.0)]
        with pytest.raises(ValueError, match="before recovering"):
            validate_fault_plan(plan, 4)

    def test_duplicate_unrecovered_failure_rejected(self):
        plan = [VmFailure(0, 1.0), VmFailure(0, 5.0)]
        with pytest.raises(ValueError, match="never recovers"):
            validate_fault_plan(plan, 4)


class TestReportSerialisation:
    def _chaos_report(self):
        scenario = heterogeneous_scenario(5, 25, seed=1)
        return run_chaos_suite(
            scenario,
            {"rr": RoundRobinScheduler()},
            seeds=(0,),
            config=ChaosConfig(num_vm_failures=1, num_stragglers=0),
        )

    def test_chaos_report_round_trips(self, tmp_path):
        report = self._chaos_report()
        path = report.save(tmp_path / "chaos.json")
        payload = load_report_rows(path)
        assert payload["kind"] == "chaos-report"
        assert payload["rows"] == json.loads(json.dumps(report.to_rows()))
        assert payload["config"]["num_vm_failures"] == 1

    def test_load_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"makespan": 4}')
        with pytest.raises(ValueError, match="not a chaos/storm report"):
            load_report_rows(path)
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report_rows(path)


class TestStormSuite:
    def _suite(self, seeds=(0,)):
        scenario = heterogeneous_scenario(8, 40, seed=3)
        control = ControlConfig(
            cadence=0.5, cooldown=2.0, imbalance_threshold=2.0,
            scale_up_backlog=1.5, standby_vms=2, sla_seconds=30.0,
        )
        return run_storm_suite(
            scenario,
            {"greedy-mct": OnlineGreedyMCT},
            demo_storm_timeline(scenario.num_vms),
            control,
            seeds=seeds,
        )

    def test_cells_carry_three_arms(self):
        report = self._suite()
        (cell,) = report.cells
        assert cell.faults == 3
        assert cell.calm.info["timeline"] == "demo-storm-calm"
        assert cell.uncontrolled.info["timeline"] == "demo-storm"
        assert "control" in cell.controlled.info
        assert "control" not in cell.uncontrolled.info
        assert report.sla_seconds == 30.0  # inherited from the config

    def test_aggregates_and_rows(self):
        report = self._suite()
        rows = report.to_rows()
        assert {"policy", "seed", "controlled_degradation",
                "uncontrolled_degradation"} <= set(rows[0])
        for arm in ("controlled", "uncontrolled"):
            assert math.isfinite(report.mean_degradation(arm))
            assert report.sla_violation_count(arm) >= 0
        with pytest.raises(ValueError, match="unknown storm arm"):
            report.mean_degradation("calm")

    def test_storm_report_round_trips(self, tmp_path):
        report = self._suite()
        payload = load_report_rows(report.save(tmp_path / "storm.json"))
        assert payload["kind"] == "storm-report"
        assert payload["timeline"] == "demo-storm"
        assert set(payload["mean_degradation"]) == {"controlled", "uncontrolled"}

    def test_suite_is_reproducible(self):
        a, b = self._suite(), self._suite()
        assert a.to_rows() == b.to_rows()

    def test_faultless_timeline_rejected(self):
        scenario = heterogeneous_scenario(6, 20, seed=0)
        with pytest.raises(ValueError, match="no fault entries"):
            run_storm_suite(
                scenario,
                {"greedy-mct": OnlineGreedyMCT},
                Timeline(base_rate=5.0),
                ControlConfig(),
            )

    def test_demo_storm_needs_four_vms(self):
        with pytest.raises(ValueError, match="at least 4"):
            demo_storm_timeline(3)
