"""Datacenter pricing model."""

from __future__ import annotations

import pytest

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.vm import Vm


@pytest.fixture
def characteristics() -> DatacenterCharacteristics:
    return DatacenterCharacteristics(
        cost_per_mem=0.05, cost_per_storage=0.001, cost_per_bw=0.01, cost_per_cpu=3.0
    )


@pytest.fixture
def vm() -> Vm:
    return Vm(vm_id=0, mips=1000.0, ram=512.0, bw=500.0, size=5000.0)


@pytest.fixture
def cloudlet() -> Cloudlet:
    return Cloudlet(cloudlet_id=0, length=2000.0, file_size=300.0, output_size=300.0)


class TestCost:
    def test_cloudlet_cost_formula(self, characteristics, vm, cloudlet):
        # cpu: 3.0 * 2000/1000 = 6; mem: 0.05*512 = 25.6;
        # storage: 0.001*5000 = 5; bw: 0.01*600 = 6 -> total 42.6
        assert characteristics.cloudlet_cost(cloudlet, vm) == pytest.approx(42.6)

    def test_components_sum_to_total(self, characteristics, vm, cloudlet):
        parts = characteristics.cost_components(cloudlet, vm)
        assert set(parts) == {"cpu", "mem", "storage", "bw"}
        assert sum(parts.values()) == pytest.approx(
            characteristics.cloudlet_cost(cloudlet, vm)
        )

    def test_faster_vm_costs_less_cpu(self, characteristics, cloudlet):
        slow = Vm(vm_id=0, mips=500.0)
        fast = Vm(vm_id=1, mips=4000.0)
        assert characteristics.cloudlet_cost(cloudlet, fast) < characteristics.cloudlet_cost(
            cloudlet, slow
        )

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="cost_per_mem"):
            DatacenterCharacteristics(cost_per_mem=-0.1)

    def test_frozen(self, characteristics):
        with pytest.raises(AttributeError):
            characteristics.cost_per_mem = 1.0

    def test_defaults(self):
        c = DatacenterCharacteristics()
        assert c.cost_per_cpu == 3.0
        assert c.arch == "x86"
