"""Cloudlet value object and lifecycle."""

from __future__ import annotations

import math

import pytest

from repro.cloud.cloudlet import Cloudlet, CloudletStatus


class TestValidation:
    def test_defaults(self):
        c = Cloudlet(cloudlet_id=1, length=250.0)
        assert c.pes == 1
        assert c.status is CloudletStatus.CREATED
        assert c.remaining_length == 250.0

    @pytest.mark.parametrize("length", [0.0, -1.0])
    def test_nonpositive_length_rejected(self, length):
        with pytest.raises(ValueError, match="length"):
            Cloudlet(cloudlet_id=1, length=length)

    def test_zero_pes_rejected(self):
        with pytest.raises(ValueError, match="pes"):
            Cloudlet(cloudlet_id=1, length=10.0, pes=0)

    def test_negative_file_size_rejected(self):
        with pytest.raises(ValueError, match="file sizes"):
            Cloudlet(cloudlet_id=1, length=10.0, file_size=-1.0)


class TestLifecycle:
    def test_submission_marks_metadata(self):
        c = Cloudlet(cloudlet_id=1, length=100.0)
        c.mark_submitted(time=3.0, vm_id=7, datacenter_id=2)
        assert c.status is CloudletStatus.QUEUED
        assert (c.submission_time, c.vm_id, c.datacenter_id) == (3.0, 7, 2)

    def test_running_records_first_start_only(self):
        c = Cloudlet(cloudlet_id=1, length=100.0)
        c.mark_running(5.0)
        c.mark_running(9.0)
        assert c.exec_start_time == 5.0
        assert c.status is CloudletStatus.RUNNING

    def test_finish_zeroes_remaining(self):
        c = Cloudlet(cloudlet_id=1, length=100.0)
        c.mark_running(0.0)
        c.mark_finished(10.0)
        assert c.is_finished
        assert c.remaining_length == 0.0
        assert c.finish_time == 10.0

    def test_wall_execution_time(self):
        c = Cloudlet(cloudlet_id=1, length=100.0)
        assert math.isnan(c.wall_execution_time)
        c.mark_submitted(0.0, 0, 0)
        c.mark_running(2.0)
        c.mark_finished(12.0)
        assert c.wall_execution_time == 10.0

    def test_waiting_time(self):
        c = Cloudlet(cloudlet_id=1, length=100.0)
        assert math.isnan(c.waiting_time)
        c.mark_submitted(1.0, 0, 0)
        c.mark_running(4.0)
        assert c.waiting_time == 3.0
