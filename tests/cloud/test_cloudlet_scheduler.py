"""Per-VM execution models: space-shared FIFO and time-shared processor sharing."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.cloudlet_scheduler import (
    CloudletSchedulerSpaceShared,
    CloudletSchedulerTimeShared,
)


def make_cloudlet(i: int, length: float, pes: int = 1) -> Cloudlet:
    return Cloudlet(cloudlet_id=i, length=length, pes=pes)


def bound(cls, mips=1000.0, pes=1):
    s = cls()
    s.bind(mips=mips, pes=pes)
    return s


class TestBinding:
    @pytest.mark.parametrize(
        "cls", [CloudletSchedulerSpaceShared, CloudletSchedulerTimeShared]
    )
    def test_unbound_rejects_operations(self, cls):
        s = cls()
        with pytest.raises(RuntimeError, match="not bound"):
            s.submit(make_cloudlet(0, 100.0), now=0.0)
        with pytest.raises(RuntimeError, match="not bound"):
            s.advance_to(1.0)

    def test_double_bind_rejected(self):
        s = CloudletSchedulerSpaceShared()
        s.bind(mips=100.0, pes=1)
        with pytest.raises(RuntimeError, match="already bound"):
            s.bind(mips=100.0, pes=1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CloudletSchedulerSpaceShared().bind(mips=0.0, pes=1)
        with pytest.raises(ValueError):
            CloudletSchedulerSpaceShared().bind(mips=10.0, pes=0)


class TestSpaceShared:
    def test_single_cloudlet_exact_finish(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0)
        c = make_cloudlet(0, 2500.0)
        s.submit(c, now=0.0)
        assert s.next_completion_time() == 2.5
        done = s.advance_to(2.5)
        assert done == [c]
        assert c.finish_time == 2.5
        assert c.exec_start_time == 0.0
        assert not s.busy

    def test_fifo_queueing_on_single_pe(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0)
        a, b = make_cloudlet(0, 1000.0), make_cloudlet(1, 2000.0)
        s.submit(a, now=0.0)
        s.submit(b, now=0.0)
        # b waits for a: finishes at 1.0 then 3.0.
        finished = s.advance_to(10.0)
        assert [c.cloudlet_id for c in finished] == [0, 1]
        assert a.finish_time == 1.0
        assert b.exec_start_time == 1.0
        assert b.finish_time == 3.0

    def test_parallel_on_multiple_pes(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0, pes=2)
        a, b, c = (make_cloudlet(i, 1000.0 * (i + 1)) for i in range(3))
        for cl in (a, b, c):
            s.submit(cl, now=0.0)
        finished = s.advance_to(10.0)
        assert a.finish_time == 1.0
        assert b.finish_time == 2.0
        # c starts when a's PE frees at t=1.
        assert c.exec_start_time == 1.0
        assert c.finish_time == 4.0
        assert len(finished) == 3

    def test_advance_partial_returns_only_finished(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0)
        a, b = make_cloudlet(0, 1000.0), make_cloudlet(1, 1000.0)
        s.submit(a, now=0.0)
        s.submit(b, now=0.0)
        assert s.advance_to(1.5) == [a]
        assert s.busy
        assert s.advance_to(2.0) == [b]

    def test_advance_is_idempotent(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0)
        s.submit(make_cloudlet(0, 1000.0), now=0.0)
        s.advance_to(5.0)
        assert s.advance_to(5.0) == []

    def test_late_submission_starts_at_submit_time(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0)
        c = make_cloudlet(0, 1000.0)
        s.submit(c, now=4.0)
        s.advance_to(10.0)
        assert c.exec_start_time == 4.0
        assert c.finish_time == 5.0

    def test_cloudlet_needing_more_pes_than_vm_rejected(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0, pes=1)
        with pytest.raises(ValueError, match="PEs"):
            s.submit(make_cloudlet(0, 100.0, pes=2), now=0.0)

    def test_resident_cloudlets_lists_running_and_queued(self):
        s = bound(CloudletSchedulerSpaceShared, mips=1000.0)
        a, b = make_cloudlet(0, 1000.0), make_cloudlet(1, 1000.0)
        s.submit(a, now=0.0)
        s.submit(b, now=0.0)
        assert {c.cloudlet_id for c in s.resident_cloudlets()} == {0, 1}

    def test_next_completion_infinite_when_idle(self):
        s = bound(CloudletSchedulerSpaceShared)
        assert s.next_completion_time() == math.inf


class TestTimeShared:
    def test_single_cloudlet_runs_at_full_speed(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0)
        c = make_cloudlet(0, 3000.0)
        s.submit(c, now=0.0)
        assert s.next_completion_time() == 3.0
        assert s.advance_to(3.0) == [c]
        assert c.finish_time == 3.0

    def test_two_equal_cloudlets_share_capacity(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0)
        a, b = make_cloudlet(0, 1000.0), make_cloudlet(1, 1000.0)
        s.submit(a, now=0.0)
        s.submit(b, now=0.0)
        finished = s.advance_to(10.0)
        # Each gets 500 MIPS: both finish at t=2.
        assert {c.finish_time for c in finished} == {2.0}

    def test_short_task_speeds_up_after_departure(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0)
        short, long = make_cloudlet(0, 500.0), make_cloudlet(1, 1500.0)
        s.submit(short, now=0.0)
        s.submit(long, now=0.0)
        s.advance_to(10.0)
        # Shared until short finishes at t=1 (500 each); long then runs
        # alone: 1000 MI left at 1000 MIPS -> finishes t=2.
        assert short.finish_time == pytest.approx(1.0)
        assert long.finish_time == pytest.approx(2.0)

    def test_per_cloudlet_rate_capped_at_one_pe(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0, pes=4)
        a = make_cloudlet(0, 1000.0)
        b = make_cloudlet(1, 1000.0)
        s.submit(a, now=0.0)
        s.submit(b, now=0.0)
        # 2 cloudlets on 4 PEs: each capped at 1000 MIPS, not 2000.
        s.advance_to(10.0)
        assert a.finish_time == pytest.approx(1.0)
        assert b.finish_time == pytest.approx(1.0)

    def test_mid_flight_arrival_slows_resident(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0)
        a = make_cloudlet(0, 1000.0)
        s.submit(a, now=0.0)
        b = make_cloudlet(1, 1000.0)
        s.submit(b, now=0.5)
        s.advance_to(10.0)
        # a ran alone 0.5s (500 MI left), then shares: 500/500 = 1.0s more.
        assert a.finish_time == pytest.approx(1.5)
        # b: 1.0s shared (500 MI done), then alone: 500/1000 = 0.5s more.
        assert b.finish_time == pytest.approx(2.0)

    def test_cloudlet_needing_more_pes_than_vm_rejected(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0, pes=1)
        with pytest.raises(ValueError, match="PEs"):
            s.submit(make_cloudlet(0, 100.0, pes=2), now=0.0)

    def test_statuses_progress(self):
        s = bound(CloudletSchedulerTimeShared, mips=1000.0)
        c = make_cloudlet(0, 100.0)
        s.submit(c, now=0.0)
        assert c.status is CloudletStatus.RUNNING
        s.advance_to(1.0)
        assert c.status is CloudletStatus.SUCCESS


class TestPropertyBased:
    @given(
        lengths=st.lists(
            st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=30
        ),
        mips=st.floats(min_value=10.0, max_value=5000.0),
    )
    def test_space_shared_single_pe_matches_prefix_sums(self, lengths, mips):
        s = CloudletSchedulerSpaceShared()
        s.bind(mips=mips, pes=1)
        cloudlets = [make_cloudlet(i, ln) for i, ln in enumerate(lengths)]
        for c in cloudlets:
            s.submit(c, now=0.0)
        finished = s.advance_to(math.fsum(lengths) / mips + 1.0)
        assert len(finished) == len(cloudlets)
        expected_finish = np.cumsum([ln / mips for ln in lengths])
        for c, ef in zip(cloudlets, expected_finish):
            assert c.finish_time == pytest.approx(ef, rel=1e-9)

    @given(
        lengths=st.lists(
            st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=20
        ),
        mips=st.floats(min_value=10.0, max_value=5000.0),
        pes=st.integers(min_value=1, max_value=4),
    )
    def test_space_shared_conserves_work(self, lengths, mips, pes):
        s = CloudletSchedulerSpaceShared()
        s.bind(mips=mips, pes=pes)
        cloudlets = [make_cloudlet(i, ln) for i, ln in enumerate(lengths)]
        for c in cloudlets:
            s.submit(c, now=0.0)
        horizon = math.fsum(lengths) / mips + 1.0
        finished = s.advance_to(horizon)
        assert len(finished) == len(cloudlets)
        for c, ln in zip(cloudlets, lengths):
            # Each cloudlet occupies a PE for exactly length/mips seconds.
            assert c.wall_execution_time == pytest.approx(ln / mips, rel=1e-9)
        # Makespan bounded below by work conservation.
        makespan = max(c.finish_time for c in cloudlets)
        assert makespan >= math.fsum(lengths) / (mips * pes) - 1e-9

    @given(
        lengths=st.lists(
            st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=20
        ),
        mips=st.floats(min_value=10.0, max_value=5000.0),
    )
    def test_time_shared_completion_order_is_by_length(self, lengths, mips):
        s = CloudletSchedulerTimeShared()
        s.bind(mips=mips, pes=1)
        cloudlets = [make_cloudlet(i, ln) for i, ln in enumerate(lengths)]
        for c in cloudlets:
            s.submit(c, now=0.0)
        finished = s.advance_to(math.fsum(lengths) / mips + 1.0)
        assert len(finished) == len(cloudlets)
        finish_by_length = sorted(cloudlets, key=lambda c: c.length)
        finishes = [c.finish_time for c in finish_by_length]
        assert all(a <= b + 1e-9 for a, b in zip(finishes, finishes[1:]))
        # Total busy time equals total work / mips for single PE.
        makespan = max(c.finish_time for c in cloudlets)
        assert makespan == pytest.approx(math.fsum(lengths) / mips, rel=1e-6)
