"""Host-level placement energy analysis."""

from __future__ import annotations

import pytest

from repro.cloud.consolidation import (
    compare_placement_policies,
    place_vms,
    placement_energy,
)
from repro.cloud.power import PowerModelLinear
from repro.cloud.simulation import CloudSimulation
from repro.cloud.vm_allocation import (
    VmAllocationConsolidating,
    VmAllocationLeastUsed,
)
from repro.schedulers import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


@pytest.fixture(scope="module")
def batch():
    scenario = heterogeneous_scenario(num_vms=24, num_cloudlets=120, seed=4)
    result = CloudSimulation(scenario, RoundRobinScheduler(), seed=4).run()
    return scenario, result


class TestPlaceVms:
    def test_every_vm_placed(self, batch):
        scenario, _ = batch
        hosts_per_dc, vm_host = place_vms(scenario, VmAllocationLeastUsed())
        assert len(vm_host) == scenario.num_vms
        placed = sum(h.vm_count for hosts in hosts_per_dc for h in hosts)
        assert placed == scenario.num_vms

    def test_consolidating_uses_fewer_or_equal_hosts(self, batch):
        scenario, _ = batch

        def active(policy):
            hosts_per_dc, _ = place_vms(scenario, policy)
            return sum(
                1 for hosts in hosts_per_dc for h in hosts if h.vm_count > 0
            )

        assert active(VmAllocationConsolidating()) <= active(VmAllocationLeastUsed())


class TestPlacementEnergy:
    def test_report_fields(self, batch):
        scenario, result = batch
        report = placement_energy(scenario, result, VmAllocationLeastUsed())
        assert report.energy_joules > 0
        assert 0 < report.active_hosts <= report.total_hosts
        assert report.idle_host_count == report.total_hosts - report.active_hosts
        assert len(report.vm_host) == scenario.num_vms

    def test_consolidation_saves_energy(self, batch):
        scenario, result = batch
        reports = compare_placement_policies(
            scenario,
            result,
            {
                "spread": VmAllocationLeastUsed(),
                "pack": VmAllocationConsolidating(),
            },
        )
        if reports["pack"].active_hosts < reports["spread"].active_hosts:
            assert reports["pack"].energy_joules < reports["spread"].energy_joules
        else:
            assert reports["pack"].energy_joules == pytest.approx(
                reports["spread"].energy_joules, rel=0.05
            )

    def test_energy_scales_with_idle_power(self, batch):
        scenario, result = batch
        low = placement_energy(
            scenario, result, VmAllocationLeastUsed(), PowerModelLinear(10.0, 250.0)
        )
        high = placement_energy(
            scenario, result, VmAllocationLeastUsed(), PowerModelLinear(200.0, 250.0)
        )
        assert high.energy_joules > low.energy_joules

    def test_energy_floor_is_idle_times_active_hosts(self, batch):
        scenario, result = batch
        model = PowerModelLinear(100.0, 250.0)
        report = placement_energy(scenario, result, VmAllocationLeastUsed(), model)
        floor = report.active_hosts * result.makespan * 100.0
        assert report.energy_joules >= floor
