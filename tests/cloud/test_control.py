"""Tests for the MAPE-K control loop and the controlled online broker."""

import math

import numpy as np
import pytest

from repro.cloud.control import ControlConfig, ControlLoop, ControlledOnlineBroker
from repro.cloud.datacenter import FaultNotice
from repro.cloud.online import OnlineCloudSimulation
from repro.core.eventqueue import Event
from repro.core.tags import EventTag
from repro.schedulers.online import OnlineGreedyMCT, OnlineLeastLoaded
from repro.workloads.timeline import Burst, Timeline, Trigger, VmFault


def make_broker(num_vms=4, num_cloudlets=6, standby_vms=0, **kwargs):
    """A detached broker: enough for mask/actuator unit tests.

    Policy/context stay ``None`` — they are only consulted during
    placement, which these tests never reach.
    """
    return ControlledOnlineBroker(
        name="broker",
        vms=[object() for _ in range(num_vms)],
        cloudlets=[object() for _ in range(num_cloudlets)],
        arrival_times=np.zeros(num_cloudlets),
        policy=None,
        context=None,
        vm_placement={i: 0 for i in range(num_vms)},
        standby_vms=standby_vms,
        **kwargs,
    )


class TestControlConfig:
    def test_defaults_validate(self):
        config = ControlConfig()
        assert config.cadence == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence": 0.0},
            {"cadence": math.nan},
            {"cooldown": -1.0},
            {"cooldown": math.inf},
            {"max_moves_per_cycle": 0},
            {"imbalance_threshold": 1.0},
            {"imbalance_threshold": math.nan},
            {"scale_up_backlog": 0.0},
            {"scale_down_backlog": -2.0},
            {"sla_seconds": math.inf},
            {"standby_vms": -1},
            {"history": 0},
        ],
    )
    def test_rejects_bad_tuning(self, kwargs):
        with pytest.raises(ValueError):
            ControlConfig(**kwargs)

    def test_to_dict_is_json_safe_and_complete(self):
        config = ControlConfig(standby_vms=2, sla_seconds=30.0)
        d = config.to_dict()
        assert d["standby_vms"] == 2 and d["sla_seconds"] == 30.0
        assert set(d) == set(vars(config))


class TestBrokerMasks:
    def test_standby_parks_highest_indices(self):
        broker = make_broker(num_vms=5, standby_vms=2)
        np.testing.assert_array_equal(broker.active, [True, True, True, False, False])
        np.testing.assert_array_equal(broker.eligible, broker.active)

    def test_standby_must_leave_one_active(self):
        with pytest.raises(ValueError, match="at least one active"):
            make_broker(num_vms=3, standby_vms=3)

    def test_max_attempts_floor(self):
        with pytest.raises(ValueError, match="max_attempts"):
            make_broker(max_attempts=0)

    def test_fault_notice_flips_alive(self):
        broker = make_broker(num_vms=4)
        down = Event(0.0, -1, 0, EventTag.FAULT_NOTICE, FaultNotice("vm-failed", (1, 2)))
        broker.process_event(down)
        np.testing.assert_array_equal(broker.alive, [True, False, False, True])
        up = Event(0.0, -1, 0, EventTag.FAULT_NOTICE, FaultNotice("vm-recovered", (2,)))
        broker.process_event(up)
        np.testing.assert_array_equal(broker.alive, [True, False, True, True])
        np.testing.assert_array_equal(broker.eligible, broker.alive)

    def test_activate_standby_recruits_lowest_parked_first(self):
        broker = make_broker(num_vms=5, standby_vms=2)
        assert broker.activate_standby(1) == 1
        np.testing.assert_array_equal(broker.active, [True, True, True, True, False])
        assert broker.scale_ups == 1
        assert broker.activate_standby(5) == 1  # only one reserve VM left
        assert broker.active.all()
        assert broker.activate_standby(1) == 0  # nothing parked

    def test_activate_standby_skips_dead_reserve(self):
        broker = make_broker(num_vms=4, standby_vms=2)
        broker.alive[2] = False
        assert broker.activate_standby(2) == 1
        assert not broker.active[2] and broker.active[3]

    def test_drain_parks_idle_highest_first(self):
        broker = make_broker(num_vms=4)
        assert broker.drain_active(1) == 1
        np.testing.assert_array_equal(broker.active, [True, True, True, False])
        assert broker.scale_downs == 1

    def test_drain_skips_busy_vms(self):
        broker = make_broker(num_vms=3)
        broker._inflight[2].add(0)
        broker.backlog[1] = 4.0
        assert broker.drain_active(3) == 1  # only vm 0 is idle
        np.testing.assert_array_equal(broker.active, [False, True, True])

    def test_drain_keeps_one_eligible(self):
        broker = make_broker(num_vms=3)
        assert broker.drain_active(10) == 2
        assert broker.eligible.sum() == 1


class TestRunsUnderControl:
    def run(self, scenario, **kwargs):
        return OnlineCloudSimulation(
            scenario, OnlineGreedyMCT(), seed=0, **kwargs
        ).run()

    def test_fault_retry_without_loop(self, small_hetero):
        timeline = Timeline(
            entries=(VmFault(at="+1s", vm_index=0, downtime="5s"),),
            name="one-crash",
        )
        result = self.run(small_hetero, timeline=timeline)
        assert (result.assignment >= 0).all()
        assert result.info["faults"] == 1
        assert result.info["first_fault_time"] == 1.0
        assert result.info["retries"] >= 0
        assert "control" not in result.info

    def test_standby_recruited_under_pressure(self, small_hetero):
        timeline = Timeline(base_rate=30.0, entries=(Burst(at="+1s", count=20),))
        control = ControlConfig(
            cadence=0.5, cooldown=1.0, scale_up_backlog=0.5, standby_vms=3
        )
        result = self.run(small_hetero, timeline=timeline, control=control)
        summary = result.info["control"]
        assert summary["scale_ups"] > 0
        assert summary["cycles"] > 0
        assert result.info["standby_vms"] == 3

    def test_dead_vm_triggers_scale_up(self, small_hetero):
        timeline = Timeline(entries=(VmFault(at="+1s", vm_index=0),), name="perma")
        control = ControlConfig(cadence=0.5, cooldown=1.0, standby_vms=2)
        result = self.run(small_hetero, timeline=timeline, control=control)
        assert result.info["control"]["scale_ups"] >= 1

    def test_rebalance_bookkeeping(self, small_hetero):
        control = ControlConfig(cadence=0.25, cooldown=0.5, imbalance_threshold=1.5)
        result = self.run(small_hetero, control=control)
        summary = result.info["control"]
        assert summary["rebalance_cancels"] == summary["actions"].get("rebalance", 0)

    def test_aggressive_loop_terminates(self, small_hetero):
        """The keep-one + per-cloudlet move cap prevent rebalance livelock."""
        control = ControlConfig(
            cadence=0.1, cooldown=0.0, imbalance_threshold=1.01,
            max_moves_per_cycle=4,
        )
        result = self.run(small_hetero, control=control)
        assert (result.assignment >= 0).all()
        assert np.isfinite(result.makespan)

    def test_timeline_trigger_reaches_loop(self, small_hetero):
        timeline = Timeline(
            triggers=(Trigger("pending", ">", 0.0, "scale_up"),), name="trig"
        )
        control = ControlConfig(cadence=0.5, standby_vms=2)
        result = self.run(small_hetero, timeline=timeline, control=control)
        assert result.info["control"]["actions"].get("scale_up", 0) >= 1

    def test_summary_shape(self, small_hetero):
        result = self.run(small_hetero, control=ControlConfig())
        summary = result.info["control"]
        assert set(summary) == {
            "cycles", "actions", "retries", "rebalance_cancels",
            "scale_ups", "scale_downs",
        }

    def test_inert_loop_matches_plain_schedule(self, small_hetero):
        plain = self.run(small_hetero)
        inert = self.run(
            small_hetero, control=ControlConfig(imbalance_threshold=1e9)
        )
        np.testing.assert_array_equal(plain.assignment, inert.assignment)
        np.testing.assert_array_equal(plain.finish_times, inert.finish_times)
        assert inert.info["control"]["actions"] == {}

    def test_controlled_run_is_deterministic(self, small_hetero):
        timeline = Timeline(
            base_rate=20.0,
            entries=(VmFault(at="+1s", vm_index=1, downtime="4s"),),
        )
        control = ControlConfig(
            cadence=0.5, cooldown=1.0, imbalance_threshold=2.0,
            scale_up_backlog=1.0, standby_vms=2,
        )
        a = self.run(small_hetero, timeline=timeline, control=control)
        b = self.run(small_hetero, timeline=timeline, control=control)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        np.testing.assert_array_equal(a.finish_times, b.finish_times)
        assert a.info["control"] == b.info["control"]

    def test_engine_guard_other_policies(self, small_hetero):
        result = OnlineCloudSimulation(
            small_hetero,
            OnlineLeastLoaded(),
            seed=0,
            timeline=Timeline(entries=(VmFault(at="+1s", vm_index=0, downtime="3s"),)),
        ).run()
        assert (result.assignment >= 0).all()


class TestLoopUnit:
    def test_loop_rejects_non_timer_events(self):
        loop = ControlLoop("loop", broker=make_broker(), config=ControlConfig())
        with pytest.raises(ValueError, match="unexpected event tag"):
            loop.process_event(Event(0.0, -1, 0, EventTag.CLOUDLET_SUBMIT))

    def test_analyze_maps_symptoms(self):
        loop = ControlLoop(
            "loop",
            broker=make_broker(),
            config=ControlConfig(
                imbalance_threshold=2.0, scale_up_backlog=5.0, scale_down_backlog=0.5
            ),
        )
        calm = {
            "mean_backlog": 1.0, "max_backlog": 1.0, "imbalance": 1.0,
            "dead_vms": 0.0, "pending": 3.0, "active_vms": 4.0,
        }
        assert loop.analyze(dict(calm, imbalance=3.0)) == ["rebalance"]
        assert loop.analyze(dict(calm, dead_vms=1.0)) == ["scale_up"]
        assert loop.analyze(dict(calm, mean_backlog=9.0)) == ["scale_up"]
        assert loop.analyze(dict(calm, mean_backlog=0.1)) == ["scale_down"]
        assert loop.analyze(dict(calm, mean_backlog=0.1, dead_vms=1.0)) == ["scale_up"]

    def test_once_trigger_fires_once(self):
        trigger = Trigger("pending", ">", 1.0, "scale_up", once=True)
        loop = ControlLoop("loop", broker=make_broker(), triggers=(trigger,))
        metrics = {
            "mean_backlog": 0.0, "max_backlog": 0.0, "imbalance": 1.0,
            "dead_vms": 0.0, "pending": 5.0, "active_vms": 4.0,
        }
        assert loop.analyze(metrics) == ["scale_up"]
        assert loop.analyze(metrics) == []
