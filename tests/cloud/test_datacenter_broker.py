"""Datacenter + broker protocol integration on the DES kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.broker import DatacenterBroker
from repro.cloud.characteristics import DatacenterCharacteristics
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.datacenter import Datacenter
from repro.cloud.host import Host
from repro.cloud.topology import DelayMatrixTopology
from repro.cloud.vm import Vm
from repro.core.engine import Simulation


def make_host(host_id=0, pes=8, mips=2000.0):
    return Host(
        host_id=host_id, mips_per_pe=mips, pes=pes, ram=1e6, bw=1e6, storage=1e9
    )


def build(num_vms=2, num_cloudlets=4, vm_mips=(1000.0, 2000.0), lengths=None):
    sim = Simulation()
    dc = Datacenter("dc-0", hosts=[make_host()], characteristics=DatacenterCharacteristics())
    sim.register(dc)
    vms = [Vm(vm_id=i, mips=vm_mips[i % len(vm_mips)]) for i in range(num_vms)]
    if lengths is None:
        lengths = [1000.0 * (i + 1) for i in range(num_cloudlets)]
    cloudlets = [Cloudlet(cloudlet_id=i, length=lengths[i]) for i in range(num_cloudlets)]
    assignment = [i % num_vms for i in range(num_cloudlets)]
    broker = DatacenterBroker(
        "broker",
        vms=vms,
        cloudlets=cloudlets,
        assignment=assignment,
        vm_placement={i: dc.id for i in range(num_vms)},
    )
    sim.register(broker)
    return sim, dc, broker, vms, cloudlets


class TestProtocol:
    def test_all_cloudlets_finish(self):
        sim, dc, broker, vms, cloudlets = build()
        sim.run()
        assert broker.all_finished
        assert dc.finished_count == len(cloudlets)
        assert all(c.is_finished for c in cloudlets)

    def test_finish_times_match_fifo_semantics(self):
        sim, dc, broker, vms, cloudlets = build(
            num_vms=2, num_cloudlets=4, vm_mips=(1000.0, 2000.0)
        )
        sim.run()
        # VM0 (1000 mips): cloudlets 0 (1000 MI) and 2 (3000 MI) FIFO.
        assert cloudlets[0].finish_time == pytest.approx(1.0)
        assert cloudlets[2].finish_time == pytest.approx(4.0)
        # VM1 (2000 mips): cloudlets 1 (2000 MI) and 3 (4000 MI).
        assert cloudlets[1].finish_time == pytest.approx(1.0)
        assert cloudlets[3].finish_time == pytest.approx(3.0)

    def test_accumulated_cost_matches_characteristics(self):
        sim, dc, broker, vms, cloudlets = build()
        sim.run()
        expected = sum(
            dc.characteristics.cloudlet_cost(c, vms[c.vm_id]) for c in cloudlets
        )
        assert dc.accumulated_cost == pytest.approx(expected)

    def test_vms_are_placed_on_hosts(self):
        sim, dc, broker, vms, cloudlets = build()
        sim.run()
        assert all(vm.is_created for vm in vms)
        assert dc.hosts[0].vm_count == len(vms)

    def test_broker_raises_when_vm_cannot_be_placed(self):
        sim = Simulation()
        # Host too slow for the requested VM.
        dc = Datacenter("dc-0", hosts=[make_host(mips=500.0)])
        sim.register(dc)
        vms = [Vm(vm_id=0, mips=1000.0)]
        cloudlets = [Cloudlet(cloudlet_id=0, length=100.0)]
        broker = DatacenterBroker(
            "broker", vms=vms, cloudlets=cloudlets, assignment=[0],
            vm_placement={0: dc.id},
        )
        sim.register(broker)
        with pytest.raises(RuntimeError, match="rejected"):
            sim.run()

    def test_submission_latency_shifts_start_times(self):
        sim = Simulation()
        dc = Datacenter("dc-0", hosts=[make_host()])
        sim.register(dc)
        vms = [Vm(vm_id=0, mips=1000.0)]
        cloudlets = [Cloudlet(cloudlet_id=0, length=1000.0)]
        topo = DelayMatrixTopology(np.array([[0.0, 0.0], [3.0, 0.0]]))
        broker = DatacenterBroker(
            "broker", vms=vms, cloudlets=cloudlets, assignment=[0],
            vm_placement={0: dc.id}, topology=topo,
        )
        sim.register(broker)
        sim.run()
        # VM create at t=3, ack instant, submit +3 -> start at t=6.
        assert cloudlets[0].exec_start_time == pytest.approx(6.0)
        assert cloudlets[0].finish_time == pytest.approx(7.0)


class TestValidation:
    def test_assignment_length_mismatch(self):
        vms = [Vm(vm_id=0, mips=1000.0)]
        cloudlets = [Cloudlet(cloudlet_id=0, length=1.0)]
        with pytest.raises(ValueError, match="assignment length"):
            DatacenterBroker("b", vms, cloudlets, assignment=[], vm_placement={0: 0})

    def test_assignment_out_of_range(self):
        vms = [Vm(vm_id=0, mips=1000.0)]
        cloudlets = [Cloudlet(cloudlet_id=0, length=1.0)]
        with pytest.raises(ValueError, match="valid vm index"):
            DatacenterBroker("b", vms, cloudlets, assignment=[5], vm_placement={0: 0})

    def test_missing_vm_placement(self):
        vms = [Vm(vm_id=0, mips=1000.0)]
        cloudlets = [Cloudlet(cloudlet_id=0, length=1.0)]
        with pytest.raises(ValueError, match="vm_placement missing"):
            DatacenterBroker("b", vms, cloudlets, assignment=[0], vm_placement={})

    def test_datacenter_requires_hosts(self):
        with pytest.raises(ValueError, match="at least one host"):
            Datacenter("dc", hosts=[])


class TestMultiDatacenter:
    def test_cloudlets_routed_to_owning_datacenter(self):
        sim = Simulation()
        dc0 = Datacenter("dc-0", hosts=[make_host()])
        dc1 = Datacenter("dc-1", hosts=[make_host()])
        sim.register_all([dc0, dc1])
        vms = [Vm(vm_id=0, mips=1000.0), Vm(vm_id=1, mips=1000.0)]
        cloudlets = [Cloudlet(cloudlet_id=i, length=500.0) for i in range(4)]
        broker = DatacenterBroker(
            "broker",
            vms=vms,
            cloudlets=cloudlets,
            assignment=[0, 1, 0, 1],
            vm_placement={0: dc0.id, 1: dc1.id},
        )
        sim.register(broker)
        sim.run()
        assert dc0.finished_count == 2
        assert dc1.finished_count == 2
        assert {c.datacenter_id for c in cloudlets} == {dc0.id, dc1.id}
