"""Datacenter/broker edge paths: destroy, unknown tags, failure statuses."""

from __future__ import annotations

import pytest

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.datacenter import Datacenter
from repro.cloud.host import Host
from repro.cloud.vm import Vm
from repro.core.engine import Simulation
from repro.core.tags import EventTag


def make_host():
    return Host(host_id=0, mips_per_pe=2000.0, pes=8, ram=1e6, bw=1e6, storage=1e9)


def minimal_sim():
    sim = Simulation()
    dc = Datacenter("dc", hosts=[make_host()])
    sim.register(dc)
    return sim, dc


class TestVmDestroy:
    def test_destroy_releases_host_resources(self):
        sim, dc = minimal_sim()
        vm = Vm(vm_id=0, mips=1000.0)
        cloudlets = [Cloudlet(cloudlet_id=0, length=100.0)]
        broker = DatacenterBroker(
            "b", [vm], cloudlets, assignment=[0], vm_placement={0: dc.id}
        )
        sim.register(broker)
        sim.run()
        assert dc.hosts[0].vm_count == 1
        broker.send_now(dc, EventTag.VM_DESTROY, data=vm)
        sim.run()
        assert dc.hosts[0].vm_count == 0
        assert len(dc.vms) == 0

    def test_destroy_unknown_vm_raises(self):
        sim, dc = minimal_sim()

        class Poker(DatacenterBroker):
            pass

        broker = Poker(
            "b",
            [Vm(vm_id=0, mips=1000.0)],
            [Cloudlet(cloudlet_id=0, length=100.0)],
            assignment=[0],
            vm_placement={0: dc.id},
        )
        sim.register(broker)
        sim.run()
        ghost = Vm(vm_id=99, mips=1000.0)
        broker.send_now(dc, EventTag.VM_DESTROY, data=ghost)
        with pytest.raises(ValueError, match="not hosted"):
            sim.run()


class TestUnexpectedTags:
    def test_datacenter_rejects_unknown_tag(self):
        sim, dc = minimal_sim()
        sim.schedule(delay=0.0, src=-1, dst=dc.id, tag=EventTag.CLOUDLET_RETURN, data=None)
        with pytest.raises(ValueError, match="unexpected event tag"):
            sim.run()

    def test_datacenter_ignores_none_tag(self):
        sim, dc = minimal_sim()
        sim.schedule(delay=0.0, src=-1, dst=dc.id, tag=EventTag.NONE)
        sim.run()  # no error

    def test_broker_rejects_unknown_tag(self):
        sim, dc = minimal_sim()
        broker = DatacenterBroker(
            "b",
            [Vm(vm_id=0, mips=1000.0)],
            [Cloudlet(cloudlet_id=0, length=100.0)],
            assignment=[0],
            vm_placement={0: dc.id},
        )
        sim.register(broker)
        sim.run()
        sim.schedule(
            delay=0.0, src=-1, dst=broker.id, tag=EventTag.VM_DATACENTER_EVENT
        )
        with pytest.raises(ValueError, match="unexpected event tag"):
            sim.run()


class TestFailedCloudletPath:
    def test_plain_broker_raises_on_cloudlet_to_missing_vm(self):
        """A cloudlet routed to a datacenter that never created its VM comes
        back FAILED, which the non-resilient broker treats as fatal."""
        sim = Simulation()
        dc0 = Datacenter("dc0", hosts=[make_host()])
        dc1 = Datacenter("dc1", hosts=[make_host()])
        sim.register_all([dc0, dc1])
        vm = Vm(vm_id=0, mips=1000.0)
        cloudlet = Cloudlet(cloudlet_id=0, length=100.0)

        class Misrouter(DatacenterBroker):
            def _submit_cloudlets(self):
                # Route the cloudlet to dc1 although the VM lives in dc0.
                self.cloudlets[0].vm_id = 0
                self.send_now(dc1.id, EventTag.CLOUDLET_SUBMIT, data=self.cloudlets[0])

        broker = Misrouter("b", [vm], [cloudlet], assignment=[0], vm_placement={0: dc0.id})
        sim.register(broker)
        with pytest.raises(RuntimeError, match="failed"):
            sim.run()

    def test_failing_unknown_vm_is_counted_and_ignored(self):
        """A fault delivery for a VM that is already gone (e.g. killed by an
        earlier co-located host crash) must not blow up the run."""
        sim, dc = minimal_sim()
        sim.schedule(delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_FAILURE, data=42)
        sim.run()
        assert dc.faults_ignored == 1
        assert dc.vm_failures == 0
