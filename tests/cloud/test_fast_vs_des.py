"""Cross-validation: the analytic fast path must match the DES engine.

This is the property that justifies using :class:`FastSimulation` for the
paper's huge homogeneous sweeps (DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.fast import FastSimulation, grouped_fifo_times, multi_pe_fifo_times
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.schedulers.random_assign import RandomScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


def assert_results_match(fast, des):
    np.testing.assert_array_equal(fast.assignment, des.assignment)
    np.testing.assert_allclose(fast.start_times, des.start_times, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(fast.finish_times, des.finish_times, rtol=1e-9, atol=1e-9)
    assert fast.makespan == pytest.approx(des.makespan)
    assert fast.time_imbalance == pytest.approx(des.time_imbalance)
    assert fast.total_cost == pytest.approx(des.total_cost)


class TestAgreement:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            RoundRobinScheduler,
            RandomScheduler,
            HoneyBeeScheduler,
            RandomBiasedSamplingScheduler,
        ],
    )
    def test_heterogeneous_agreement(self, scheduler_factory):
        scenario = heterogeneous_scenario(num_vms=8, num_cloudlets=40, seed=3)
        fast = FastSimulation(scenario, scheduler_factory(), seed=3).run()
        des = CloudSimulation(scenario, scheduler_factory(), seed=3).run()
        assert_results_match(fast, des)

    def test_homogeneous_agreement(self):
        scenario = homogeneous_scenario(num_vms=7, num_cloudlets=30, seed=1)
        fast = FastSimulation(scenario, RoundRobinScheduler(), seed=1).run()
        des = CloudSimulation(scenario, RoundRobinScheduler(), seed=1).run()
        assert_results_match(fast, des)

    @settings(max_examples=25, deadline=None)
    @given(
        num_vms=st.integers(min_value=1, max_value=12),
        num_cloudlets=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_random_assignments_agree(self, num_vms, num_cloudlets, seed):
        scenario = heterogeneous_scenario(
            num_vms=num_vms,
            num_cloudlets=num_cloudlets,
            num_datacenters=min(2, num_vms),
            seed=seed,
        )
        fast = FastSimulation(scenario, RandomScheduler(), seed=seed).run()
        des = CloudSimulation(scenario, RandomScheduler(), seed=seed).run()
        assert_results_match(fast, des)


class TestGroupedFifo:
    def test_single_vm_prefix_sums(self):
        start, finish = grouped_fifo_times(
            np.zeros(3, dtype=np.int64), np.array([1.0, 2.0, 3.0]), num_vms=1
        )
        np.testing.assert_allclose(start, [0.0, 1.0, 3.0])
        np.testing.assert_allclose(finish, [1.0, 3.0, 6.0])

    def test_two_vms_independent(self):
        assignment = np.array([0, 1, 0, 1], dtype=np.int64)
        exec_times = np.array([1.0, 10.0, 2.0, 20.0])
        start, finish = grouped_fifo_times(assignment, exec_times, num_vms=2)
        np.testing.assert_allclose(start, [0.0, 0.0, 1.0, 10.0])
        np.testing.assert_allclose(finish, [1.0, 10.0, 3.0, 30.0])

    def test_unused_vms_are_fine(self):
        start, finish = grouped_fifo_times(
            np.array([5], dtype=np.int64), np.array([2.0]), num_vms=10
        )
        np.testing.assert_allclose(finish, [2.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            grouped_fifo_times(np.array([0, 1]), np.array([1.0]), num_vms=2)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0.01, max_value=100.0),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_property_matches_naive_per_vm_cumsum(self, pairs):
        assignment = np.array([p[0] for p in pairs], dtype=np.int64)
        exec_times = np.array([p[1] for p in pairs])
        start, finish = grouped_fifo_times(assignment, exec_times, num_vms=6)
        clock = {}
        for i, (vm, ex) in enumerate(pairs):
            t0 = clock.get(vm, 0.0)
            assert start[i] == pytest.approx(t0, rel=1e-9, abs=1e-9)
            assert finish[i] == pytest.approx(t0 + ex, rel=1e-9, abs=1e-9)
            clock[vm] = finish[i]


class TestMultiPeFifo:
    def test_two_pes_run_pairwise(self):
        exec_times = np.array([4.0, 1.0, 1.0])
        start, finish = multi_pe_fifo_times(np.arange(3), exec_times, pes=2)
        np.testing.assert_allclose(start, [0.0, 0.0, 1.0])
        np.testing.assert_allclose(finish, [4.0, 1.0, 2.0])

    def test_invalid_pes_rejected(self):
        with pytest.raises(ValueError):
            multi_pe_fifo_times(np.arange(1), np.array([1.0]), pes=0)

    def test_multi_pe_scenario_agrees_with_des(self):
        # Build a scenario with 2-PE VMs and check fast vs DES agreement.
        import dataclasses

        scenario = heterogeneous_scenario(num_vms=4, num_cloudlets=20, seed=9)
        vms = tuple(dataclasses.replace(v, pes=2) for v in scenario.vms)
        scenario = dataclasses.replace(scenario, vms=vms)
        fast = FastSimulation(scenario, RoundRobinScheduler(), seed=9).run()
        des = CloudSimulation(scenario, RoundRobinScheduler(), seed=9).run()
        assert_results_match(fast, des)

    def test_argsort_grouping_matches_per_vm_rescan_exactly(self):
        # Regression pin for the grouped multi-PE fallback: the stable
        # argsort grouping must reproduce the old O(V·n) per-VM rescan
        # (np.unique + full boolean scan per VM) bit for bit, including
        # with empty VMs, uneven group sizes and mixed PE counts.
        rng = np.random.default_rng(42)
        n, num_vms = 500, 16
        assignment = rng.integers(0, num_vms, size=n)
        assignment[assignment == 3] = 4  # leave VM 3 empty on purpose
        exec_times = rng.uniform(0.1, 10.0, size=n)
        vm_pes = rng.integers(1, 5, size=num_vms)

        ref_start = np.empty_like(exec_times)
        ref_finish = np.empty_like(exec_times)
        for vm_idx in np.unique(assignment):
            members = np.flatnonzero(assignment == vm_idx)
            s, f = multi_pe_fifo_times(
                members, exec_times[members], int(vm_pes[vm_idx])
            )
            ref_start[members] = s
            ref_finish[members] = f

        start = np.empty_like(exec_times)
        finish = np.empty_like(exec_times)
        order = np.argsort(assignment, kind="stable")
        boundaries = np.flatnonzero(np.diff(assignment[order])) + 1
        for members in np.split(order, boundaries):
            if members.size == 0:
                continue
            vm_idx = int(assignment[members[0]])
            s, f = multi_pe_fifo_times(
                members, exec_times[members], int(vm_pes[vm_idx])
            )
            start[members] = s
            finish[members] = f

        np.testing.assert_array_equal(start, ref_start)
        np.testing.assert_array_equal(finish, ref_finish)

    def test_multi_pe_fast_run_exact_regression(self):
        # Exact-equality pin of FastSimulation.run on a multi-PE scenario:
        # the grouping rewrite must not perturb any output array.
        import dataclasses

        scenario = heterogeneous_scenario(num_vms=6, num_cloudlets=60, seed=3)
        vms = tuple(
            dataclasses.replace(v, pes=1 + (i % 3)) for i, v in enumerate(scenario.vms)
        )
        scenario = dataclasses.replace(scenario, vms=vms)
        result = FastSimulation(scenario, RoundRobinScheduler(), seed=3).run()

        arr_exec = np.array(
            [c.length for c in scenario.cloudlets], dtype=float
        ) / np.array([v.mips for v in scenario.vms], dtype=float)[result.assignment]
        ref_start = np.empty_like(arr_exec)
        ref_finish = np.empty_like(arr_exec)
        pes = np.array([v.pes for v in scenario.vms])
        for vm_idx in np.unique(result.assignment):
            members = np.flatnonzero(result.assignment == vm_idx)
            s, f = multi_pe_fifo_times(members, arr_exec[members], int(pes[vm_idx]))
            ref_start[members] = s
            ref_finish[members] = f
        np.testing.assert_array_equal(result.start_times, ref_start)
        np.testing.assert_array_equal(result.finish_times, ref_finish)
