"""Fault injection and resilient recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.cloudlet import CloudletStatus
from repro.cloud.faults import (
    FAULT_DELIVERY_PRIORITY,
    FaultInjector,
    HostFailure,
    VmFailure,
    VmSlowdown,
    run_with_failures,
)
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


class TestVmFailureSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            VmFailure(vm_index=-1, at_time=0.0)
        with pytest.raises(ValueError):
            VmFailure(vm_index=0, at_time=-1.0)

    def test_injector_rejects_unknown_vm(self):
        with pytest.raises(ValueError, match="unknown vm"):
            FaultInjector("fi", [VmFailure(5, 1.0)], vm_entity={0: 0})

    def test_injector_requires_factory_for_recoveries(self):
        with pytest.raises(ValueError, match="vm_factory"):
            FaultInjector("fi", [VmFailure(0, 1.0, downtime=2.0)], vm_entity={0: 0})

    def test_fault_deliveries_preempt_normal_traffic(self):
        # The ordering contract rests on this constant: fault deliveries at a
        # given instant run before normal traffic (0) and wake-ups (+1).
        assert FAULT_DELIVERY_PRIORITY == -1

    def test_downtime_must_be_positive(self):
        with pytest.raises(ValueError, match="downtime"):
            VmFailure(0, 1.0, downtime=0.0)


class TestRunWithFailures:
    def test_all_cloudlets_still_finish(self):
        scenario = heterogeneous_scenario(8, 60, seed=1)
        result = run_with_failures(
            scenario,
            RoundRobinScheduler(),
            [VmFailure(0, at_time=5.0), VmFailure(3, at_time=10.0)],
            seed=1,
        )
        assert result.num_cloudlets == 60
        assert (result.finish_times > 0).all()
        assert result.info["retries"] > 0
        assert result.info["failures"] == 2

    def test_homogeneous_failure_extends_makespan(self):
        # On identical VMs, losing one mid-batch strictly delays the work it
        # carried (no faster VM can absorb it for free).
        scenario = homogeneous_scenario(5, 100, seed=0)
        clean = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        faulty = run_with_failures(
            scenario, RoundRobinScheduler(), [VmFailure(0, at_time=1.0)], seed=0
        )
        assert faulty.makespan > clean.makespan
        assert faulty.info["retries"] > 0

    def test_no_failures_matches_plain_run(self):
        scenario = heterogeneous_scenario(6, 40, seed=2)
        clean = CloudSimulation(scenario, RoundRobinScheduler(), seed=2).run()
        faulty = run_with_failures(scenario, RoundRobinScheduler(), [], seed=2)
        assert faulty.makespan == pytest.approx(clean.makespan)
        assert faulty.info["retries"] == 0
        np.testing.assert_array_equal(faulty.assignment, clean.assignment)

    def test_retries_avoid_dead_vms(self):
        scenario = homogeneous_scenario(4, 40, seed=0)
        result = run_with_failures(
            scenario, RoundRobinScheduler(), [VmFailure(2, at_time=0.5)], seed=0
        )
        retried = result.assignment != np.arange(40) % 4
        # Every reassigned cloudlet landed off the dead VM.
        assert (result.assignment[retried] != 2).all()
        # And nothing that finished *before* the failure was disturbed.
        done_early = result.finish_times <= 0.5
        assert (result.assignment[done_early] == (np.arange(40) % 4)[done_early]).all()

    def test_failure_after_completion_is_harmless(self):
        scenario = homogeneous_scenario(4, 8, seed=0)
        clean = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        result = run_with_failures(
            scenario,
            RoundRobinScheduler(),
            [VmFailure(1, at_time=clean.makespan + 100.0)],
            seed=0,
        )
        assert result.info["retries"] == 0
        assert result.makespan == pytest.approx(clean.makespan)

    def test_out_of_range_failure_rejected(self):
        scenario = homogeneous_scenario(4, 8, seed=0)
        with pytest.raises(ValueError, match="out of range"):
            run_with_failures(
                scenario, RoundRobinScheduler(), [VmFailure(99, 1.0)], seed=0
            )

    def test_waiting_time_reflects_recovery_delay(self):
        scenario = homogeneous_scenario(2, 20, seed=0)
        clean = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        faulty = run_with_failures(
            scenario, RoundRobinScheduler(), [VmFailure(0, at_time=1.0)], seed=0
        )
        assert faulty.average_waiting_time > clean.average_waiting_time

    def test_multiple_failures_cascade(self):
        scenario = homogeneous_scenario(6, 120, seed=0)
        result = run_with_failures(
            scenario,
            RoundRobinScheduler(),
            [VmFailure(i, at_time=1.0 + i) for i in range(5)],
            seed=0,
        )
        # Only VM 5 survives; everything must still complete there.
        assert result.num_cloudlets == 120
        late_work = result.assignment[result.finish_times > 10.0]
        assert (late_work == 5).all()

    def test_statuses_all_success_at_end(self):
        scenario = homogeneous_scenario(4, 30, seed=0)
        result = run_with_failures(
            scenario, RoundRobinScheduler(), [VmFailure(1, at_time=0.7)], seed=0
        )
        assert (result.exec_times > 0).all()

    def test_recovering_failure_restores_the_vm(self):
        scenario = homogeneous_scenario(3, 30, seed=0)
        result = run_with_failures(
            scenario,
            RoundRobinScheduler(),
            [VmFailure(0, at_time=0.5, downtime=1.0)],
            seed=0,
        )
        assert result.info["recoveries"] == 1
        assert result.info["failed_vms"] == []
        assert result.info["retries"] > 0

    def test_host_failure_blast_radius(self):
        scenario = homogeneous_scenario(4, 40, seed=0)
        result = run_with_failures(
            scenario, RoundRobinScheduler(), [HostFailure(0, at_time=0.6)], seed=0
        )
        assert result.info["host_failures"] == 1
        assert 0 in result.info["failed_vms"]
        assert (result.finish_times > 0).all()

    def test_slowdown_needs_no_retries(self):
        scenario = homogeneous_scenario(4, 40, seed=0)
        result = run_with_failures(
            scenario,
            RoundRobinScheduler(),
            [VmSlowdown(1, at_time=0.3, duration=4.0, factor=0.5)],
            seed=0,
        )
        assert result.info["retries"] == 0
        assert result.info["lost_mi"] == 0.0


class TestCloudletRetryReset:
    def test_reset_clears_progress_keeps_submission(self):
        from repro.cloud.cloudlet import Cloudlet

        c = Cloudlet(cloudlet_id=0, length=100.0)
        c.mark_submitted(2.0, vm_id=1, datacenter_id=0)
        c.mark_running(3.0)
        c.remaining_length = 40.0
        c.reset_for_retry()
        assert c.remaining_length == 100.0
        assert c.exec_start_time == -1.0
        assert c.status is CloudletStatus.CREATED
        # Second submission keeps the original timestamp.
        c.mark_submitted(9.0, vm_id=2, datacenter_id=1)
        assert c.submission_time == 2.0
        assert c.vm_id == 2
