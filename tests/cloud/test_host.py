"""Host VM placement."""

from __future__ import annotations

import pytest

from repro.cloud.host import Host
from repro.cloud.vm import Vm


def make_host(**kwargs) -> Host:
    defaults = dict(
        host_id=0, mips_per_pe=2000.0, pes=4, ram=4096.0, bw=2000.0, storage=20000.0
    )
    defaults.update(kwargs)
    return Host(**defaults)


def make_vm(vm_id=0, **kwargs) -> Vm:
    defaults = dict(mips=1000.0, pes=1, ram=512.0, bw=500.0, size=5000.0)
    defaults.update(kwargs)
    return Vm(vm_id=vm_id, **defaults)


class TestSuitability:
    def test_fitting_vm_is_suitable(self):
        assert make_host().is_suitable_for(make_vm())

    def test_vm_faster_than_pe_is_unsuitable(self):
        assert not make_host(mips_per_pe=500.0).is_suitable_for(make_vm(mips=1000.0))

    def test_vm_with_too_many_pes_unsuitable(self):
        assert not make_host(pes=1).is_suitable_for(make_vm(pes=2))

    @pytest.mark.parametrize(
        "attr,value",
        [("ram", 8192.0), ("bw", 4000.0), ("size", 50000.0)],
    )
    def test_resource_shortages_unsuitable(self, attr, value):
        assert not make_host().is_suitable_for(make_vm(**{attr: value}))


class TestPlacement:
    def test_create_vm_reserves_resources(self):
        host = make_host()
        vm = make_vm()
        assert host.create_vm(vm)
        assert vm.host is host
        assert host.vm_count == 1
        assert host.free_pes == 3
        assert host.ram_provisioner.available == 4096.0 - 512.0
        assert host.available_storage == 15000.0

    def test_create_rejects_when_full(self):
        host = make_host(pes=1)
        assert host.create_vm(make_vm(vm_id=0))
        assert not host.create_vm(make_vm(vm_id=1))

    def test_duplicate_vm_id_rejected(self):
        host = make_host()
        host.create_vm(make_vm(vm_id=0))
        with pytest.raises(ValueError, match="already"):
            host.create_vm(make_vm(vm_id=0))

    def test_destroy_releases_everything(self):
        host = make_host()
        vm = make_vm()
        host.create_vm(vm)
        host.destroy_vm(vm)
        assert vm.host is None
        assert host.vm_count == 0
        assert host.free_pes == 4
        assert host.available_storage == 20000.0

    def test_destroy_unknown_vm_rejected(self):
        with pytest.raises(ValueError, match="not on host"):
            make_host().destroy_vm(make_vm())

    def test_iter_vms(self):
        host = make_host()
        vms = [make_vm(vm_id=i) for i in range(3)]
        for vm in vms:
            host.create_vm(vm)
        assert list(host.iter_vms()) == vms

    def test_total_mips(self):
        assert make_host().total_mips == 8000.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            make_host(pes=0)
        with pytest.raises(ValueError):
            make_host(mips_per_pe=0.0)
