"""Live VM migration and the runtime consolidation controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.datacenter import Datacenter
from repro.cloud.host import Host
from repro.cloud.migration import ConsolidationController
from repro.cloud.vm import Vm
from repro.cloud.vm_allocation import VmAllocationLeastUsed
from repro.core.engine import Simulation
from repro.core.tags import EventTag


def make_host(host_id, pes=4):
    return Host(
        host_id=host_id, mips_per_pe=2000.0, pes=pes, ram=1e5, bw=1e6, storage=1e8
    )


def build(num_hosts=2, num_vms=2, lengths=(4000.0, 4000.0)):
    """Spread VMs over hosts (least-used policy) with one cloudlet each."""
    sim = Simulation()
    dc = Datacenter(
        "dc",
        hosts=[make_host(i) for i in range(num_hosts)],
        vm_allocation_policy=VmAllocationLeastUsed(),
    )
    sim.register(dc)
    vms = [Vm(vm_id=i, mips=1000.0) for i in range(num_vms)]
    cloudlets = [Cloudlet(cloudlet_id=i, length=lengths[i % len(lengths)]) for i in range(num_vms)]
    broker = DatacenterBroker(
        "broker",
        vms=vms,
        cloudlets=cloudlets,
        assignment=list(range(num_vms)),
        vm_placement={i: dc.id for i in range(num_vms)},
    )
    sim.register(broker)
    return sim, dc, broker, vms, cloudlets


class TestMigrationMechanics:
    def test_migration_moves_vm_after_copy_phase(self):
        sim, dc, broker, vms, cloudlets = build()
        sim.run(until=0.1)
        source = vms[0].host
        target = dc.hosts[1] if source is dc.hosts[0] else dc.hosts[0]
        sim.schedule(
            delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_MIGRATE,
            data=(0, target.host_id),
        )
        sim.run()
        assert vms[0].host is target
        assert dc.migrations_completed == 1
        assert dc.migrations_rejected == 0

    def test_copy_phase_duration_uses_ram_over_bandwidth(self):
        sim, dc, broker, vms, cloudlets = build(lengths=(400000.0, 400000.0))
        dc.migration_bandwidth = 64.0  # 512 MB ram -> 8 s copy
        sim.run(until=0.1)
        target = dc.hosts[1] if vms[0].host is dc.hosts[0] else dc.hosts[0]
        sim.schedule(
            delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_MIGRATE,
            data=(0, target.host_id),
        )
        sim.run(until=7.0)
        assert vms[0].host is not target  # still copying
        sim.run(until=9.0)
        assert vms[0].host is target

    def test_cloudlet_timings_invariant_under_migration(self):
        plain = build()
        plain[0].run()
        finishes_plain = [c.finish_time for c in plain[4]]

        sim, dc, broker, vms, cloudlets = build()
        sim.run(until=0.1)
        target = dc.hosts[1] if vms[0].host is dc.hosts[0] else dc.hosts[0]
        sim.schedule(
            delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_MIGRATE,
            data=(0, target.host_id),
        )
        sim.run()
        assert [c.finish_time for c in cloudlets] == pytest.approx(finishes_plain)

    def test_migration_to_current_host_rejected(self):
        sim, dc, broker, vms, cloudlets = build()
        sim.run(until=0.1)
        current = vms[0].host
        sim.schedule(
            delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_MIGRATE,
            data=(0, current.host_id),
        )
        sim.run()
        assert dc.migrations_rejected == 1
        assert dc.migrations_completed == 0

    def test_unknown_vm_or_host_rejected(self):
        sim, dc, broker, vms, cloudlets = build()
        sim.run(until=0.1)
        sim.schedule(
            delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_MIGRATE, data=(99, 0)
        )
        with pytest.raises(ValueError, match="unknown vm"):
            sim.run()

    def test_full_target_aborts_migration(self):
        sim, dc, broker, vms, cloudlets = build(num_hosts=2, num_vms=2)
        # Shrink host 1's capacity by filling it: it already has one VM and
        # pes=4; make the target unsuitable by using a 1-PE host instead.
        sim.run(until=0.1)
        # Find the host of vm1 and fill it completely with dummy VMs.
        target = vms[1].host
        filler_id = 100
        while target.free_pes > 0:
            target.create_vm(Vm(vm_id=filler_id, mips=1000.0))
            filler_id += 1
        sim.schedule(
            delay=0.0, src=-1, dst=dc.id, tag=EventTag.VM_MIGRATE,
            data=(0, target.host_id),
        )
        sim.run()
        assert dc.migrations_rejected >= 1
        assert vms[0].host is not target


class TestConsolidationController:
    def test_controller_reduces_active_hosts(self):
        # 4 hosts, 4 single-PE-demand VMs spread one per host by least-used;
        # long-running cloudlets keep the sim alive while the controller packs.
        sim, dc, broker, vms, cloudlets = build(
            num_hosts=4, num_vms=4, lengths=(200000.0,) * 4
        )
        controller = ConsolidationController(
            "packer", dc, interval=2.0, max_rounds=10, moves_per_round=2
        )
        sim.register(controller)
        sim.run()
        active = sum(1 for h in dc.hosts if h.vm_count > 0)
        assert active < 4
        assert dc.migrations_completed >= 1
        assert controller.moves_requested >= 1
        assert broker.all_finished

    def test_controller_idle_on_single_active_host(self):
        sim, dc, broker, vms, cloudlets = build(num_hosts=1, num_vms=2)
        controller = ConsolidationController("packer", dc, interval=1.0, max_rounds=3)
        sim.register(controller)
        sim.run()
        assert controller.moves_requested == 0

    def test_controller_validation(self):
        sim, dc, *_ = build()
        with pytest.raises(ValueError):
            ConsolidationController("c", dc, interval=0.0)
        with pytest.raises(ValueError):
            ConsolidationController("c", dc, max_rounds=0)
