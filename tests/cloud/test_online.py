"""Online simulation: arrival-driven scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.online import OnlineCloudSimulation
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.online import (
    BatchAdapter,
    OnlineGreedyMCT,
    OnlineLeastLoaded,
    OnlineRandom,
    OnlineRoundRobin,
)
from repro.workloads.arrivals import BatchArrivals, PoissonArrivals, UniformArrivals
from repro.workloads.heterogeneous import heterogeneous_scenario

ALL_POLICIES = [
    OnlineRoundRobin,
    OnlineRandom,
    OnlineLeastLoaded,
    OnlineGreedyMCT,
]


class TestPolicies:
    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_end_to_end(self, small_hetero, policy_cls):
        result = OnlineCloudSimulation(
            small_hetero, policy_cls(), arrivals=PoissonArrivals(rate=5.0), seed=1
        ).run()
        assert result.num_cloudlets == 60
        assert result.makespan > 0
        assert (result.assignment >= 0).all()
        assert result.info["engine"] == "online-des"

    def test_round_robin_cycles(self, small_hetero):
        result = OnlineCloudSimulation(
            small_hetero, OnlineRoundRobin(), arrivals=UniformArrivals(0.01), seed=0
        ).run()
        np.testing.assert_array_equal(result.assignment, np.arange(60) % 12)

    def test_least_loaded_balances_backlog(self):
        scenario = heterogeneous_scenario(num_vms=6, num_cloudlets=120, seed=4)
        result = OnlineCloudSimulation(
            scenario, OnlineLeastLoaded(), arrivals=BatchArrivals(), seed=0
        ).run()
        busy = np.zeros(6)
        np.add.at(busy, result.assignment, result.exec_times)
        assert busy.max() / busy.min() < 3.0

    def test_greedy_beats_round_robin_on_makespan(self):
        scenario = heterogeneous_scenario(num_vms=10, num_cloudlets=200, seed=4)
        greedy = OnlineCloudSimulation(
            scenario, OnlineGreedyMCT(), arrivals=BatchArrivals(), seed=0
        ).run()
        rr = OnlineCloudSimulation(
            scenario, OnlineRoundRobin(), arrivals=BatchArrivals(), seed=0
        ).run()
        assert greedy.makespan < rr.makespan

    def test_flow_time_accounts_for_arrivals(self, small_hetero):
        result = OnlineCloudSimulation(
            small_hetero, OnlineGreedyMCT(), arrivals=UniformArrivals(1.0), seed=0
        ).run()
        # Starts cannot precede arrivals.
        assert (result.start_times >= result.submission_times - 1e-9).all()
        assert result.average_waiting_time >= 0

    def test_decision_time_recorded(self, small_hetero):
        result = OnlineCloudSimulation(
            small_hetero, OnlineGreedyMCT(), seed=0
        ).run()
        assert result.scheduling_time > 0


class TestBatchAdapter:
    def test_single_wave_matches_offline_batch(self, small_hetero):
        """With batch arrivals there is exactly one wave, so the adapter must
        reproduce the offline batch run of the wrapped scheduler."""
        online = OnlineCloudSimulation(
            small_hetero,
            BatchAdapter(RoundRobinScheduler()),
            arrivals=BatchArrivals(),
            seed=0,
        ).run()
        offline = CloudSimulation(small_hetero, RoundRobinScheduler(), seed=0).run()
        np.testing.assert_array_equal(online.assignment, offline.assignment)
        assert online.makespan == pytest.approx(offline.makespan)

    def test_many_waves_still_complete(self, small_hetero):
        result = OnlineCloudSimulation(
            small_hetero,
            BatchAdapter(RoundRobinScheduler()),
            arrivals=UniformArrivals(0.5),
            seed=0,
        ).run()
        assert result.num_cloudlets == 60
        assert result.scheduler_name == "batch[basetest]"

    def test_adapter_requires_wave_setup(self, tiny_context):
        adapter = BatchAdapter(RoundRobinScheduler())
        adapter.start(tiny_context)
        with pytest.raises(RuntimeError, match="begin_wave"):
            adapter.assign(0, 0.0, np.zeros(4), tiny_context)

    def test_online_aware_policy_beats_blind_batch_under_load(self):
        """Under sustained arrivals, backlog-aware greedy must beat a batch
        scheduler that re-solves each wave blindly."""
        scenario = heterogeneous_scenario(num_vms=8, num_cloudlets=240, seed=9)
        arrivals = UniformArrivals(interval=0.05)
        greedy = OnlineCloudSimulation(
            scenario, OnlineGreedyMCT(), arrivals=arrivals, seed=0
        ).run()
        blind = OnlineCloudSimulation(
            scenario, BatchAdapter(RoundRobinScheduler()), arrivals=arrivals, seed=0
        ).run()
        assert greedy.makespan < blind.makespan


class TestValidation:
    def test_policy_returning_bad_vm_detected(self, small_hetero):
        class Broken(OnlineRoundRobin):
            def assign(self, cloudlet_idx, now, backlog, context):
                return 10_000

        with pytest.raises(ValueError, match="invalid VM index"):
            OnlineCloudSimulation(small_hetero, Broken(), seed=0).run()


class TestBrokerEdgeCases:
    """PR 6 edge cases: empty waves, cancelled tails, interleaved notices."""

    def _broker(self, num_vms=3, num_cloudlets=5, **kwargs):
        from repro.cloud.control import ControlledOnlineBroker

        return ControlledOnlineBroker(
            name="broker",
            vms=[object() for _ in range(num_vms)],
            cloudlets=[object() for _ in range(num_cloudlets)],
            arrival_times=np.zeros(num_cloudlets),
            policy=None,
            context=None,
            vm_placement={i: 0 for i in range(num_vms)},
            **kwargs,
        )

    def test_empty_arrival_wave_is_harmless(self):
        """A wave instant with no cloudlets places nothing and doesn't raise."""
        broker = self._broker()
        before = broker.assignment.copy()
        broker._process_wave(123.456)  # instant that never had arrivals
        np.testing.assert_array_equal(broker.assignment, before)
        assert all(not s for s in broker._inflight)

    def test_cancel_tail_keeps_one_cloudlet(self):
        """Cancelling everything on a VM always spares one resident."""
        broker = self._broker()
        broker.send_now = lambda *args, **kwargs: None  # detached from a sim
        broker._inflight[1] = {0, 1, 2}
        assert broker.cancel_for_rebalance(1, max_cancel=10) == 2
        assert broker.rebalance_cancels == 2

    def test_cancel_sole_cloudlet_is_refused(self):
        broker = self._broker()
        broker._inflight[0] = {4}
        assert broker.cancel_for_rebalance(0, max_cancel=5) == 0
        assert broker.rebalance_cancels == 0

    def test_cancel_skips_pinned_and_already_bouncing(self):
        broker = self._broker()
        broker.send_now = lambda *args, **kwargs: None
        broker._inflight[2] = {0, 1, 2, 3}
        broker.moves[0] = broker.max_attempts  # pinned: moved too often
        broker._planned_bounces.add(1)  # already mid-bounce
        assert broker.cancel_for_rebalance(2, max_cancel=10) == 2
        assert broker._planned_bounces == {1, 2, 3}

    def test_all_finished_on_empty_workload(self):
        broker = self._broker(num_cloudlets=0)
        assert broker.all_finished

    def test_all_finished_under_interleaved_fault_notices(self, small_hetero):
        """Fault notices between returns never confuse completion tracking."""
        from repro.workloads.timeline import Timeline, VmFault

        timeline = Timeline(
            entries=(
                VmFault(at="+0.5s", vm_index=0, downtime="2s"),
                VmFault(at="+1.5s", vm_index=1, downtime="2s"),
            ),
            name="interleaved",
        )
        result = OnlineCloudSimulation(
            small_hetero, OnlineGreedyMCT(), seed=0, timeline=timeline
        ).run()
        assert len(np.unique(result.assignment >= 0)) == 1
        assert (result.finish_times > 0).all()
        assert result.info["faults"] == 2
