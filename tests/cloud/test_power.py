"""Power models and batch energy accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.power import (
    PowerModelLinear,
    PowerModelSqrt,
    batch_energy,
    energy_of_result,
    vm_busy_times,
)
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import RoundRobinScheduler


class TestPowerModels:
    def test_linear_endpoints(self):
        model = PowerModelLinear(idle_watts=100.0, peak_watts=250.0)
        assert model.power(0.0) == 100.0
        assert model.power(1.0) == 250.0
        assert model.power(0.5) == 175.0

    def test_sqrt_is_concave_above_linear(self):
        lin = PowerModelLinear(100.0, 250.0)
        sq = PowerModelSqrt(100.0, 250.0)
        assert sq.power(0.25) > lin.power(0.25)
        assert sq.power(0.0) == lin.power(0.0)
        assert sq.power(1.0) == lin.power(1.0)

    def test_out_of_range_utilization_rejected(self):
        with pytest.raises(ValueError):
            PowerModelLinear().power(1.5)

    def test_invalid_watts_rejected(self):
        with pytest.raises(ValueError):
            PowerModelLinear(idle_watts=300.0, peak_watts=100.0)
        with pytest.raises(ValueError):
            PowerModelSqrt(idle_watts=-1.0, peak_watts=10.0)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=50))
    def test_power_array_matches_scalar(self, utils):
        for model in (PowerModelLinear(), PowerModelSqrt()):
            vectorised = model.power_array(np.array(utils))
            scalar = [model.power(u) for u in utils]
            np.testing.assert_allclose(vectorised, scalar)


class TestBatchEnergy:
    def test_busy_times(self, tiny_scenario):
        busy = vm_busy_times(
            tiny_scenario, np.array([0, 0, 1, 1, 2, 2, 3, 3]), np.ones(8)
        )
        np.testing.assert_allclose(busy, [2.0, 2.0, 2.0, 2.0])

    def test_energy_formula(self, tiny_scenario):
        assignment = np.zeros(8, dtype=np.int64)
        exec_times = np.ones(8)  # VM0 busy 8 s; other 3 idle for 8 s
        model = PowerModelLinear(idle_watts=100.0, peak_watts=200.0)
        energy = batch_energy(
            tiny_scenario, assignment, exec_times, makespan=8.0, power_model=model
        )
        # busy: 8 s * 200 W; idle: 3 VMs * 8 s * 100 W (VM0 has no idle).
        assert energy == pytest.approx(8 * 200 + 24 * 100)

    def test_energy_without_idle_fleet(self, tiny_scenario):
        assignment = np.zeros(8, dtype=np.int64)
        energy = batch_energy(
            tiny_scenario,
            assignment,
            np.ones(8),
            makespan=8.0,
            power_model=PowerModelLinear(100.0, 200.0),
            idle_fleet=False,
        )
        assert energy == pytest.approx(8 * 200)

    def test_busy_beyond_makespan_rejected(self, tiny_scenario):
        with pytest.raises(ValueError, match="busy"):
            batch_energy(tiny_scenario, np.zeros(8, dtype=np.int64), np.ones(8), makespan=1.0)

    def test_nonpositive_makespan_rejected(self, tiny_scenario):
        with pytest.raises(ValueError, match="makespan"):
            batch_energy(tiny_scenario, np.zeros(8, dtype=np.int64), np.ones(8), makespan=0.0)

    def test_energy_of_result_end_to_end(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        energy = energy_of_result(result, tiny_scenario)
        assert energy > 0
        # Lower bound: full fleet idling for the whole makespan.
        floor = tiny_scenario.num_vms * result.makespan * PowerModelLinear().power(0.0)
        assert energy >= floor
