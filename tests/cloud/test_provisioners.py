"""Resource provisioners: capacity accounting."""

from __future__ import annotations

import pytest

from repro.cloud.provisioners import (
    BwProvisioner,
    PeProvisioner,
    RamProvisioner,
    ResourceProvisioner,
)


class TestResourceProvisioner:
    def test_allocate_within_capacity(self):
        p = ResourceProvisioner(100.0)
        assert p.allocate(1, 60.0)
        assert p.available == 40.0
        assert p.allocated_for(1) == 60.0

    def test_allocate_beyond_capacity_fails(self):
        p = ResourceProvisioner(100.0)
        assert p.allocate(1, 80.0)
        assert not p.allocate(2, 30.0)
        assert p.allocated_for(2) == 0.0

    def test_reallocate_replaces_not_adds(self):
        p = ResourceProvisioner(100.0)
        p.allocate(1, 80.0)
        assert p.allocate(1, 90.0)  # replacing 80 with 90 fits
        assert p.total_allocated == 90.0

    def test_deallocate_returns_amount(self):
        p = ResourceProvisioner(100.0)
        p.allocate(1, 30.0)
        assert p.deallocate(1) == 30.0
        assert p.deallocate(1) == 0.0
        assert p.available == 100.0

    def test_can_allocate(self):
        p = ResourceProvisioner(10.0)
        assert p.can_allocate(10.0)
        assert not p.can_allocate(10.5)

    def test_negative_amount_rejected(self):
        p = ResourceProvisioner(10.0)
        with pytest.raises(ValueError, match="negative"):
            p.can_allocate(-1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourceProvisioner(-5.0)

    def test_reset(self):
        p = ResourceProvisioner(10.0)
        p.allocate(1, 5.0)
        p.reset()
        assert p.available == 10.0


class TestSpecialisations:
    def test_names(self):
        assert RamProvisioner(1.0).name == "ram"
        assert BwProvisioner(1.0).name == "bw"
        assert PeProvisioner(1).name == "pes"

    def test_pe_provisioner_requires_integral(self):
        p = PeProvisioner(4)
        assert p.allocate(1, 2)
        with pytest.raises(ValueError, match="integral"):
            p.allocate(2, 1.5)
