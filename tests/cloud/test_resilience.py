"""Retry policies, failure-aware rescheduling and recovery properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.cloudlet import Cloudlet
from repro.cloud.faults import (
    HostFailure,
    ResilientBroker,
    VmFailure,
    VmSlowdown,
    run_with_failures,
    validate_fault_plan,
)
from repro.cloud.resilience import (
    ExponentialBackoffRetry,
    FixedDelayRetry,
    ImmediateRetry,
    run_resilient,
)
from repro.cloud.simulation import CloudSimulation
from repro.cloud.vm import Vm
from repro.core.rng import spawn_rng
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


class TestRetryPolicies:
    def test_immediate_is_zero_delay(self):
        policy = ImmediateRetry(max_attempts=3)
        rng = spawn_rng(0, "t")
        assert policy.next_delay(2, rng) == 0.0
        assert policy.next_delay(3, rng) == 0.0
        assert policy.next_delay(4, rng) is None

    def test_fixed_delay(self):
        policy = FixedDelayRetry(delay=2.5, max_attempts=4)
        rng = spawn_rng(0, "t")
        assert policy.next_delay(2, rng) == 2.5
        assert policy.next_delay(5, rng) is None

    def test_exponential_growth_and_cap(self):
        policy = ExponentialBackoffRetry(
            base_delay=1.0, factor=2.0, max_delay=5.0, jitter=0.0, max_attempts=10
        )
        rng = spawn_rng(0, "t")
        delays = [policy.next_delay(a, rng) for a in range(2, 7)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = ExponentialBackoffRetry(base_delay=1.0, jitter=0.2, max_attempts=9)
        a = [policy.next_delay(2, spawn_rng(7, "t")) for _ in range(3)]
        assert a[0] == a[1] == a[2]  # same seed, same jitter
        for _ in range(50):
            d = policy.next_delay(2, spawn_rng(7, "t2"))
            assert 0.8 <= d <= 1.2

    def test_first_attempt_is_not_a_retry(self):
        with pytest.raises(ValueError, match="attempt 2"):
            ImmediateRetry().next_delay(1, spawn_rng(0, "t"))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ImmediateRetry(max_attempts=0)
        with pytest.raises(ValueError):
            FixedDelayRetry(delay=-1.0)
        with pytest.raises(ValueError):
            ExponentialBackoffRetry(jitter=1.5)
        with pytest.raises(ValueError):
            ExponentialBackoffRetry(factor=0.5)


class TestRetryCursorStability:
    """Satellite fix: the rotation cursor walks VM indices, so the sequence
    does not jump when the alive set shrinks mid-rotation."""

    def _broker(self, num_vms=4):
        return ResilientBroker(
            "b",
            vms=[Vm(vm_id=i, mips=1000.0) for i in range(num_vms)],
            cloudlets=[],
            assignment=[],
            vm_placement={i: 1 for i in range(num_vms)},
        )

    def test_round_robin_skips_dead(self):
        broker = self._broker()
        broker.mark_failed_vm(1)
        picks = [broker.choose_retry_vm(None) for _ in range(6)]
        assert picks == [0, 2, 3, 0, 2, 3]

    def test_sequence_stable_under_mid_rotation_failure(self):
        broker = self._broker()
        broker.mark_failed_vm(1)
        assert [broker.choose_retry_vm(None) for _ in range(2)] == [0, 2]
        broker.mark_failed_vm(0)
        # The cursor keeps walking indices: 3, then wraps past dead 0/1 to 2.
        assert [broker.choose_retry_vm(None) for _ in range(2)] == [3, 2]

    def test_recovery_rejoins_rotation(self):
        broker = self._broker()
        broker.mark_failed_vm(2)
        assert [broker.choose_retry_vm(None) for _ in range(3)] == [0, 1, 3]
        broker.mark_recovered_vm(2)
        assert [broker.choose_retry_vm(None) for _ in range(4)] == [0, 1, 2, 3]

    def test_all_dead_raises(self):
        broker = self._broker(2)
        broker.mark_failed_vm(0)
        broker.mark_failed_vm(1)
        with pytest.raises(RuntimeError, match="every VM has failed"):
            broker.choose_retry_vm(None)


class TestZeroFaultReproduction:
    """Property: an empty fault plan reproduces the plain DES run bit-for-bit."""

    @pytest.mark.parametrize("make_scheduler", [RoundRobinScheduler, GreedyMinCompletionScheduler])
    def test_bit_for_bit(self, make_scheduler):
        scenario = heterogeneous_scenario(8, 80, seed=4)
        plain = CloudSimulation(scenario, make_scheduler(), seed=4).run()
        resilient = run_resilient(scenario, make_scheduler(), [], seed=4)
        np.testing.assert_array_equal(resilient.assignment, plain.assignment)
        np.testing.assert_array_equal(resilient.submission_times, plain.submission_times)
        np.testing.assert_array_equal(resilient.start_times, plain.start_times)
        np.testing.assert_array_equal(resilient.finish_times, plain.finish_times)
        np.testing.assert_array_equal(resilient.costs, plain.costs)
        assert resilient.makespan == plain.makespan
        assert resilient.time_imbalance == plain.time_imbalance
        assert resilient.total_cost == plain.total_cost
        assert resilient.events_processed == plain.events_processed
        assert resilient.info["retries"] == 0
        assert resilient.info["dead_letter"] == []


class TestMiConservation:
    """Property: retries carry no partial progress — every completed cloudlet
    executed its full length on its final VM, and lost progress is accounted."""

    def test_full_length_on_final_vm(self):
        scenario = homogeneous_scenario(4, 40, seed=0)
        result = run_resilient(
            scenario,
            RoundRobinScheduler(),
            [VmFailure(1, at_time=0.7)],
            seed=0,
            retry_policy=ImmediateRetry(max_attempts=5),
        )
        arr = scenario.arrays()
        assert result.info["dead_letter"] == []
        expected = arr.cloudlet_length / arr.vm_mips[result.assignment]
        np.testing.assert_allclose(result.exec_times, expected, rtol=1e-9)
        assert result.info["lost_mi"] > 0
        assert result.info["lost_mi"] <= arr.cloudlet_length.sum()

    def test_completed_plus_dead_lettered_covers_batch(self):
        scenario = homogeneous_scenario(3, 30, seed=1)
        result = run_resilient(
            scenario,
            RoundRobinScheduler(),
            [VmFailure(0, at_time=0.5), VmFailure(1, at_time=0.9)],
            seed=1,
            retry_policy=ImmediateRetry(max_attempts=2),
        )
        dead = set(result.info["dead_letter"])
        completed = {i for i in range(30) if result.finish_times[i] > 0}
        assert dead.isdisjoint(completed)
        assert dead | completed == set(range(30))
        # Dead-lettered cloudlets keep their -1 sentinels.
        for i in dead:
            assert result.finish_times[i] == -1.0


class TestNoDeadVmPlacement:
    """Property: no cloudlet finishes on a VM after that VM permanently died."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_permanent_failures(self, seed):
        scenario = heterogeneous_scenario(6, 60, seed=seed)
        fails = {0: 2.0, 3: 4.0}
        plan = [VmFailure(k, at_time=t) for k, t in fails.items()]
        result = run_resilient(
            scenario, GreedyMinCompletionScheduler(), plan, seed=seed,
            retry_policy=ImmediateRetry(max_attempts=8),
        )
        assert result.info["dead_letter"] == []
        for vm_index, at_time in fails.items():
            on_dead = result.assignment == vm_index
            # Anything placed there must have finished by the crash instant.
            assert (result.finish_times[on_dead] <= at_time + 1e-9).all()
        assert sorted(result.info["failed_vms"]) == sorted(fails)


class TestRecoveryAndStragglers:
    def test_vm_recovery_restores_capacity(self):
        scenario = homogeneous_scenario(2, 24, seed=0)
        plan = [VmFailure(0, at_time=1.0, downtime=2.0)]
        result = run_resilient(
            scenario, RoundRobinScheduler(), plan, seed=0,
            retry_policy=FixedDelayRetry(delay=2.5, max_attempts=5),
        )
        assert result.info["dead_letter"] == []
        assert result.info["recoveries"] == 1
        assert result.info["failed_vms"] == []  # alive again at the end
        # Work placed after the recovery instant runs on VM 0 again.
        late_on_0 = (result.assignment == 0) & (result.start_times > 3.0)
        assert late_on_0.any()

    def test_straggler_retiming_is_exact(self):
        # 1 VM at 10 MIPS, one 100 MI cloudlet: finishes at t=10 clean.
        # Halving speed over [5, 15) leaves 50 MI at t=5 run at 5 MIPS -> 15.
        from repro.workloads.spec import (
            CloudletSpec,
            DatacenterSpec,
            ScenarioSpec,
            VmSpec,
        )

        scenario = ScenarioSpec(
            name="straggler-unit",
            datacenters=(DatacenterSpec(),),
            vms=(VmSpec(mips=10.0),),
            cloudlets=(CloudletSpec(length=100.0),),
            vm_datacenter=(0,),
        )
        plan = [VmSlowdown(0, at_time=5.0, duration=10.0, factor=0.5)]
        result = run_with_failures(scenario, RoundRobinScheduler(), plan, seed=0)
        assert result.finish_times[0] == pytest.approx(15.0)

    def test_straggler_slows_but_loses_nothing(self):
        scenario = homogeneous_scenario(4, 40, seed=0)
        clean = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        plan = [VmSlowdown(2, at_time=0.2, duration=5.0, factor=0.25)]
        slowed = run_resilient(scenario, RoundRobinScheduler(), plan, seed=0)
        assert slowed.makespan > clean.makespan
        assert slowed.info["retries"] == 0
        assert slowed.info["lost_mi"] == 0.0

    def test_host_failure_kills_colocated_vms(self):
        scenario = homogeneous_scenario(4, 40, seed=0)
        result = run_resilient(
            scenario, RoundRobinScheduler(), [HostFailure(0, at_time=0.6)],
            seed=0, retry_policy=ImmediateRetry(max_attempts=6),
        )
        assert result.info["host_failures"] == 1
        assert 0 in result.info["failed_vms"]
        assert result.info["dead_letter"] == []
        assert result.info["retries"] > 0


class TestSpeculation:
    def test_straggler_victim_is_cancelled_and_reruns_elsewhere(self):
        scenario = homogeneous_scenario(4, 24, seed=0)
        # VM 1 runs at 1% speed for a very long window: its cloudlets blow
        # straight through the 3x-expected watchdog and get re-placed.
        plan = [VmSlowdown(1, at_time=0.05, duration=1e4, factor=0.01)]
        result = run_resilient(
            scenario, RoundRobinScheduler(), plan, seed=0,
            retry_policy=ImmediateRetry(max_attempts=10),
            speculation_multiple=3.0,
        )
        assert result.info["speculative_cancels"] > 0
        assert result.info["dead_letter"] == []
        clean = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        # Without speculation the batch is hostage to the straggler.
        hostage = run_resilient(scenario, RoundRobinScheduler(), plan, seed=0)
        assert result.makespan < hostage.makespan
        assert result.makespan < 10 * clean.makespan

    def test_speculation_multiple_must_exceed_one(self):
        scenario = homogeneous_scenario(2, 4, seed=0)
        with pytest.raises(ValueError, match="speculation_multiple"):
            run_resilient(
                scenario, RoundRobinScheduler(), [], seed=0,
                speculation_multiple=0.5,
            )


class TestPlanValidation:
    def test_duplicate_permanent_failure_rejected(self):
        plan = [VmFailure(0, 1.0), VmFailure(0, 5.0)]
        with pytest.raises(ValueError, match="never recovers"):
            validate_fault_plan(plan, 4)

    def test_refailure_before_recovery_rejected(self):
        plan = [VmFailure(0, 1.0, downtime=10.0), VmFailure(0, 5.0)]
        with pytest.raises(ValueError, match="before recovering"):
            validate_fault_plan(plan, 4)

    def test_refailure_after_recovery_allowed(self):
        plan = [VmFailure(0, 1.0, downtime=2.0), VmFailure(0, 5.0)]
        assert validate_fault_plan(plan, 4) == plan

    def test_same_instant_same_vm_rejected(self):
        plan = [VmFailure(0, 3.0), VmSlowdown(0, 3.0, duration=1.0, factor=0.5)]
        with pytest.raises(ValueError, match="identical instant"):
            validate_fault_plan(plan, 4)

    def test_host_failure_counts_as_failure_of_anchor(self):
        plan = [HostFailure(1, 2.0), VmFailure(1, 9.0)]
        with pytest.raises(ValueError, match="never recovers"):
            validate_fault_plan(plan, 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_fault_plan([VmFailure(9, 1.0)], 4)

    def test_slowdown_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            VmSlowdown(0, 1.0, duration=1.0, factor=1.5)
        with pytest.raises(ValueError, match="factor"):
            VmSlowdown(0, 1.0, duration=1.0, factor=0.0)

    def test_same_instant_different_vms_allowed(self):
        plan = [VmFailure(0, 3.0), VmFailure(1, 3.0)]
        assert validate_fault_plan(plan, 4) == plan


class TestReschedulingBeatsBlindRecovery:
    def test_heterogeneous_degradation(self):
        """Acceptance: scheduler-driven recovery beats blind round-robin on
        makespan degradation in a heterogeneous scenario."""
        scenario = heterogeneous_scenario(10, 120, seed=5)
        scheduler = GreedyMinCompletionScheduler()
        baseline = CloudSimulation(scenario, scheduler, seed=5).run()
        plan = [VmFailure(0, at_time=2.0), VmFailure(4, at_time=3.0)]
        blind = run_with_failures(scenario, scheduler, plan, seed=5)
        smart = run_resilient(
            scenario, scheduler, plan, seed=5,
            retry_policy=ImmediateRetry(max_attempts=8),
        )
        assert smart.info["dead_letter"] == []
        assert smart.makespan / baseline.makespan < blind.makespan / baseline.makespan
        assert smart.info["reschedules"] >= 1
