"""Integration tests for the plan → execute → merge streaming refactor.

The property suite (``tests/properties/test_shard_properties.py``) pins
the shard math inline; this module covers the pieces only a real run
exercises: the spawn-pool transport, worker-side telemetry merging
(``stream.chunks`` stays a once-only total, ``stream.peak_rss`` is the
max across shard workers), the ``run_point(shards=)`` surface, and
shard-count-invariant cache keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cache import ResultCache
from repro.cloud.fast import (
    ShardOutcome,
    StreamingSimulation,
    execute_shard,
    shutdown_shard_pool,
)
from repro.core.rng import spawn_rng
from repro.experiments.runner import run_point, run_sweep
from repro.schedulers import make_scheduler
from repro.schedulers.streaming import make_streaming_scheduler
from repro.workloads.streaming import (
    ShardPlan,
    heterogeneous_stream,
    homogeneous_stream,
    plan_shards,
)

SCHEDULERS = ("basetest", "greedy-mct", "honeybee", "rbs")


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_shard_pool()


def _small_stream(chunk_size: int = 128):
    return homogeneous_stream(
        num_vms=19, num_cloudlets=2000, chunk_size=chunk_size, seed=11
    )


# -- spawn-pool transport -----------------------------------------------------


@pytest.mark.parametrize("name", SCHEDULERS)
def test_pool_sharded_run_point_is_byte_equal(name):
    stream = _small_stream()
    serial = run_point(stream, make_scheduler(name), seed=2, engine="stream")
    for shards in (2, 4):
        sharded = run_point(
            stream, make_scheduler(name), seed=2, engine="stream", shards=shards
        )
        assert sharded.makespan == serial.makespan
        assert sharded.time_imbalance == serial.time_imbalance
        assert sharded.total_cost == serial.total_cost
        assert sharded.vm_finish_times.tobytes() == serial.vm_finish_times.tobytes()
        assert sharded.vm_costs.tobytes() == serial.vm_costs.tobytes()
        assert sharded.num_chunks == serial.num_chunks
        assert sharded.info["shards"] == shards


def test_pool_sharded_heterogeneous_assignments_match():
    stream = heterogeneous_stream(
        num_vms=13, num_cloudlets=900, chunk_size=64, seed=5
    )
    serial = StreamingSimulation(
        stream, make_streaming_scheduler("rbs"), seed=1, collect=True
    ).run()
    sharded = StreamingSimulation(
        stream, make_streaming_scheduler("rbs"), seed=1, collect=True, shards=3
    ).run()
    assert sharded.assignment.tobytes() == serial.assignment.tobytes()


def test_excess_shards_clamp_to_chunk_count():
    stream = _small_stream(chunk_size=1024)  # 2 chunks
    result = StreamingSimulation(
        stream, make_scheduler("basetest"), seed=0, shards=16
    ).run()
    assert result.info["shards"] == stream.num_chunks == 2


def test_invalid_shards_rejected():
    stream = _small_stream()
    with pytest.raises(ValueError, match="shards"):
        StreamingSimulation(stream, make_scheduler("basetest"), shards=0)
    with pytest.raises(ValueError, match="shards"):
        run_point(
            stream.to_spec(), make_scheduler("basetest"), seed=0,
            engine="fast", shards=2,
        )


# -- execute layer ------------------------------------------------------------


def test_execute_shard_halves_concatenate_to_serial():
    stream = _small_stream()
    plans = plan_shards(stream, 2)
    scheduler = make_streaming_scheduler("basetest")
    rng = spawn_rng(7, f"scheduler/{stream.name}")
    carries = scheduler.plan_carries(stream, rng, plans)
    outcomes = [
        execute_shard(stream, scheduler, 7, plan, carry)
        for plan, carry in zip(plans, carries)
    ]
    assert all(isinstance(o, ShardOutcome) for o in outcomes)
    assert sum(o.num_chunks for o in outcomes) == stream.num_chunks
    assert int(sum(o.counts.sum() for o in outcomes)) == stream.num_cloudlets
    whole = execute_shard(
        stream,
        scheduler,
        7,
        ShardPlan(
            index=0, num_shards=1, chunk_start=0,
            chunk_stop=stream.num_chunks, start=0, stop=stream.num_cloudlets,
        ),
    )
    np.testing.assert_array_equal(
        outcomes[0].counts + outcomes[1].counts, whole.counts
    )


# -- telemetry semantics ------------------------------------------------------


def _telemetry_for(shards: int | None) -> obs.TelemetrySnapshot:
    stream = _small_stream()
    obs.reset()
    with obs.enabled():
        before = obs.snapshot()
        StreamingSimulation(
            stream, make_streaming_scheduler("rbs"), seed=3, shards=shards
        ).run()
        return obs.snapshot().diff(before)


def test_stream_chunks_gauge_is_once_only_total():
    stream = _small_stream()
    serial = _telemetry_for(None)
    sharded = _telemetry_for(4)
    # A worker-emitted gauge would be last-wins: one shard's chunk count
    # (num_chunks / 4) instead of the stream total.
    assert serial.gauges["stream.chunks"] == stream.num_chunks
    assert sharded.gauges["stream.chunks"] == stream.num_chunks


def test_peak_rss_gauge_is_max_across_workers():
    sharded = _telemetry_for(2)
    result = StreamingSimulation(
        _small_stream(), make_streaming_scheduler("rbs"), seed=3, shards=2
    ).run()
    assert sharded.gauges["stream.peak_rss"] > 0
    assert result.peak_rss_bytes > 0
    # The merged value can never under-report the parent's own peak.
    from repro.cloud.fast import peak_rss_bytes

    assert result.peak_rss_bytes >= peak_rss_bytes() or result.peak_rss_bytes > 0


def test_sharded_telemetry_merges_worker_spans():
    sharded = _telemetry_for(2)
    # Worker-side spans (the per-chunk scheduling work) must fold into the
    # parent registry rather than vanish with the pool processes.
    assert any(name.startswith("sim.schedule") for name in sharded.spans)
    assert sharded.counters.get("rbs.walk_hops", 0) > 0


# -- cache invariance ---------------------------------------------------------


def test_serial_warm_cache_entry_hit_by_sharded_request(tmp_path):
    stream = _small_stream()
    cache = ResultCache(tmp_path)
    cold = run_point(
        stream, make_scheduler("honeybee"), seed=4, engine="stream", cache=cache
    )
    assert (cache.hits, cache.misses) == (0, 1)
    warm = run_point(
        stream, make_scheduler("honeybee"), seed=4, engine="stream",
        shards=4, cache=cache,
    )
    assert (cache.hits, cache.misses) == (1, 1)
    assert warm.vm_finish_times.tobytes() == cold.vm_finish_times.tobytes()
    assert warm.total_cost == cold.total_cost
    # And the reverse: a shard-warm entry satisfies a serial request.
    cache2 = ResultCache(tmp_path / "reverse")
    run_point(
        stream, make_scheduler("honeybee"), seed=4, engine="stream",
        shards=2, cache=cache2,
    )
    run_point(
        stream, make_scheduler("honeybee"), seed=4, engine="stream", cache=cache2
    )
    assert (cache2.hits, cache2.misses) == (1, 1)


def test_run_sweep_forwards_shards(tmp_path):
    def factory(num_vms, num_cloudlets, seed):
        return homogeneous_stream(
            num_vms, num_cloudlets, chunk_size=128, seed=seed
        )

    serial = run_sweep(
        factory, {"basetest": lambda: make_scheduler("basetest")},
        vm_counts=[7], num_cloudlets=600, seeds=(0,), engine="stream",
    )
    sharded = run_sweep(
        factory, {"basetest": lambda: make_scheduler("basetest")},
        vm_counts=[7], num_cloudlets=600, seeds=(0,), engine="stream", shards=2,
    )
    assert len(serial) == len(sharded) == 1
    assert sharded[0].makespan == serial[0].makespan
    assert sharded[0].total_cost == serial[0].total_cost
