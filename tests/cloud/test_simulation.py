"""CloudSimulation façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.simulation import (
    CloudSimulation,
    build_hosts_for_datacenter,
    compute_batch_costs,
    quick_run,
)
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.random_assign import RandomScheduler


class TestRun:
    def test_round_robin_on_tiny(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        assert result.scheduler_name == "basetest"
        assert result.num_cloudlets == 8
        assert result.makespan > 0
        assert result.scheduling_time >= 0
        assert result.time_imbalance >= 0
        assert result.total_cost > 0
        np.testing.assert_array_equal(result.assignment, np.arange(8) % 4)

    def test_exec_times_match_length_over_mips(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        arr = tiny_scenario.arrays()
        expected = arr.cloudlet_length / arr.vm_mips[result.assignment]
        np.testing.assert_allclose(result.exec_times, expected, rtol=1e-9)

    def test_makespan_equals_latest_finish(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        assert result.makespan == pytest.approx(
            result.finish_times.max() - result.start_times.min()
        )

    def test_total_cost_matches_vectorised(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        costs = compute_batch_costs(tiny_scenario, result.assignment)
        assert result.total_cost == pytest.approx(costs.sum())

    def test_time_shared_model_runs(self, tiny_scenario):
        result = CloudSimulation(
            tiny_scenario, RoundRobinScheduler(), seed=0, execution_model="time-shared"
        ).run()
        assert result.info["execution_model"] == "time-shared"
        # Per-VM completion is identical to space-shared, so the makespan
        # matches the space-shared run.
        space = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        assert result.makespan == pytest.approx(space.makespan)

    def test_unknown_execution_model_rejected(self, tiny_scenario):
        with pytest.raises(ValueError, match="execution model"):
            CloudSimulation(tiny_scenario, RoundRobinScheduler(), execution_model="magic")

    def test_summary_keys(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        assert set(result.summary()) == {
            "scheduling_time_s",
            "makespan",
            "time_imbalance",
            "total_cost",
        }

    def test_derived_metrics(self, tiny_scenario):
        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        assert result.average_waiting_time >= 0
        assert result.throughput > 0

    def test_deterministic_for_fixed_seed(self, small_hetero):
        a = CloudSimulation(small_hetero, RandomScheduler(), seed=11).run()
        b = CloudSimulation(small_hetero, RandomScheduler(), seed=11).run()
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.makespan == b.makespan

    def test_different_seed_changes_random_assignment(self, small_hetero):
        a = CloudSimulation(small_hetero, RandomScheduler(), seed=1).run()
        b = CloudSimulation(small_hetero, RandomScheduler(), seed=2).run()
        assert not np.array_equal(a.assignment, b.assignment)


class TestQuickRun:
    def test_heterogeneous(self):
        result = quick_run(RoundRobinScheduler(), num_vms=5, num_cloudlets=20, seed=0)
        assert result.num_cloudlets == 20

    def test_homogeneous(self):
        result = quick_run(
            RoundRobinScheduler(),
            num_vms=5,
            num_cloudlets=20,
            scenario_kind="homogeneous",
            seed=0,
        )
        # 4 cloudlets per VM x 0.25 s each.
        assert result.makespan == pytest.approx(1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="scenario kind"):
            quick_run(RoundRobinScheduler(), scenario_kind="weird")


class TestHostSizing:
    def test_hosts_cover_vm_demand(self, small_hetero):
        for dc_idx in range(small_hetero.num_datacenters):
            hosts = build_hosts_for_datacenter(small_hetero, dc_idx)
            vms = [small_hetero.vms[i] for i in small_hetero.vms_in_datacenter(dc_idx)]
            total_pes = sum(h.pes for h in hosts)
            assert total_pes >= sum(v.pes for v in vms)

    def test_undersized_host_mips_rejected(self, tiny_scenario):
        import dataclasses

        bad_dc = dataclasses.replace(tiny_scenario.datacenters[0], host_mips=100.0)
        bad = dataclasses.replace(
            tiny_scenario, datacenters=(bad_dc, tiny_scenario.datacenters[1])
        )
        with pytest.raises(ValueError, match="MIPS"):
            build_hosts_for_datacenter(bad, 0)


class TestResultPersistence:
    def test_round_trip(self, tiny_scenario, tmp_path):
        from repro.cloud.simulation import SimulationResult

        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        path = result.save(tmp_path / "sub" / "result.json")
        restored = SimulationResult.load(path)
        assert restored.scheduler_name == result.scheduler_name
        assert restored.makespan == result.makespan
        assert restored.total_cost == result.total_cost
        np.testing.assert_array_equal(restored.assignment, result.assignment)
        np.testing.assert_allclose(restored.finish_times, result.finish_times)
        assert restored.summary() == result.summary()

    def test_unknown_version_rejected(self, tiny_scenario, tmp_path):
        import json

        from repro.cloud.simulation import SimulationResult

        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        path = result.save(tmp_path / "r.json")
        data = json.loads(path.read_text())
        data["format_version"] = 42
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format version"):
            SimulationResult.load(path)

    def test_non_json_info_dropped_gracefully(self, tiny_scenario, tmp_path):
        from repro.cloud.simulation import SimulationResult

        result = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        result.info["array"] = np.zeros(3)  # not JSON-serialisable
        result.info["note"] = "kept"
        path = result.save(tmp_path / "r.json")
        restored = SimulationResult.load(path)
        assert "array" not in restored.info
        assert restored.info["note"] == "kept"
