"""Network topologies."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.cloud.topology import (
    DelayMatrixTopology,
    GraphTopology,
    ZeroLatencyTopology,
)


class TestZeroLatency:
    def test_always_zero(self):
        t = ZeroLatencyTopology()
        assert t.latency(0, 1) == 0.0
        assert t.latency(5, 5) == 0.0


class TestDelayMatrix:
    def test_lookup(self):
        m = np.array([[0.0, 1.5], [2.5, 0.0]])
        t = DelayMatrixTopology(m)
        assert t.latency(0, 1) == 1.5
        assert t.latency(1, 0) == 2.5
        assert t.size == 2

    def test_out_of_range_uses_default(self):
        t = DelayMatrixTopology(np.zeros((2, 2)), default_latency=9.0)
        assert t.latency(0, 5) == 9.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            DelayMatrixTopology(np.zeros((2, 3)))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DelayMatrixTopology(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            DelayMatrixTopology(np.zeros((2, 2)), default_latency=-1.0)


class TestGraphTopology:
    def test_shortest_path_latency(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.0)
        g.add_edge(1, 2, weight=3.0)
        g.add_edge(0, 2, weight=10.0)
        t = GraphTopology(g)
        assert t.latency(0, 2) == 5.0  # through node 1
        assert t.latency(2, 0) == 5.0

    def test_self_latency_zero(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        assert GraphTopology(g).latency(0, 0) == 0.0

    def test_disconnected_uses_default(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        t = GraphTopology(g, default_latency=7.0)
        assert t.latency(0, 1) == 7.0
