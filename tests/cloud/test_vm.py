"""Vm construction and scheduler binding."""

from __future__ import annotations

import pytest

from repro.cloud.cloudlet_scheduler import (
    CloudletSchedulerSpaceShared,
    CloudletSchedulerTimeShared,
)
from repro.cloud.vm import Vm


class TestConstruction:
    def test_defaults_match_table_iii(self):
        vm = Vm(vm_id=0, mips=1000.0)
        assert (vm.pes, vm.ram, vm.bw, vm.size) == (1, 512.0, 500.0, 5000.0)

    def test_total_mips(self):
        assert Vm(vm_id=0, mips=1000.0, pes=4).total_mips == 4000.0

    @pytest.mark.parametrize("mips", [0.0, -5.0])
    def test_nonpositive_mips_rejected(self, mips):
        with pytest.raises(ValueError, match="mips"):
            Vm(vm_id=0, mips=mips)

    def test_zero_pes_rejected(self):
        with pytest.raises(ValueError, match="pes"):
            Vm(vm_id=0, mips=100.0, pes=0)

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError):
            Vm(vm_id=0, mips=100.0, ram=-1.0)

    def test_default_scheduler_is_space_shared(self):
        vm = Vm(vm_id=0, mips=1000.0)
        assert isinstance(vm.cloudlet_scheduler, CloudletSchedulerSpaceShared)

    def test_custom_scheduler_bound_to_capacity(self):
        scheduler = CloudletSchedulerTimeShared()
        vm = Vm(vm_id=0, mips=2000.0, pes=2, cloudlet_scheduler=scheduler)
        assert scheduler.mips == 2000.0
        assert scheduler.pes == 2
        assert vm.cloudlet_scheduler is scheduler

    def test_scheduler_cannot_be_shared_between_vms(self):
        scheduler = CloudletSchedulerSpaceShared()
        Vm(vm_id=0, mips=1000.0, cloudlet_scheduler=scheduler)
        with pytest.raises(RuntimeError, match="already bound"):
            Vm(vm_id=1, mips=1000.0, cloudlet_scheduler=scheduler)

    def test_is_created_tracks_host(self):
        vm = Vm(vm_id=0, mips=1000.0)
        assert not vm.is_created
