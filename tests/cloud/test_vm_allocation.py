"""VM allocation policies."""

from __future__ import annotations

from repro.cloud.host import Host
from repro.cloud.vm import Vm
from repro.cloud.vm_allocation import (
    VmAllocationFirstFit,
    VmAllocationLeastUsed,
    VmAllocationRoundRobin,
)


def hosts(pe_counts):
    return [
        Host(
            host_id=i,
            mips_per_pe=2000.0,
            pes=p,
            ram=1e6,
            bw=1e6,
            storage=1e9,
        )
        for i, p in enumerate(pe_counts)
    ]


def vm(vm_id=0):
    return Vm(vm_id=vm_id, mips=1000.0)


class TestLeastUsed:
    def test_picks_host_with_most_free_pes(self):
        hs = hosts([2, 8, 4])
        assert VmAllocationLeastUsed().select_host(hs, vm()) is hs[1]

    def test_rebalances_as_hosts_fill(self):
        hs = hosts([2, 2])
        policy = VmAllocationLeastUsed()
        placed = []
        for i in range(4):
            v = vm(i)
            assert policy.allocate(hs, v)
            placed.append(v.host.host_id)
        assert placed.count(0) == 2 and placed.count(1) == 2

    def test_returns_none_when_nothing_fits(self):
        hs = hosts([1])
        policy = VmAllocationLeastUsed()
        assert policy.allocate(hs, vm(0))
        assert policy.select_host(hs, vm(1)) is None
        assert not policy.allocate(hs, vm(1))


class TestFirstFit:
    def test_prefers_lowest_id(self):
        hs = hosts([2, 8])
        assert VmAllocationFirstFit().select_host(hs, vm()) is hs[0]

    def test_skips_full_hosts(self):
        hs = hosts([1, 1])
        policy = VmAllocationFirstFit()
        policy.allocate(hs, vm(0))
        v = vm(1)
        policy.allocate(hs, v)
        assert v.host is hs[1]


class TestRoundRobin:
    def test_rotates(self):
        hs = hosts([4, 4, 4])
        policy = VmAllocationRoundRobin()
        placements = []
        for i in range(6):
            v = vm(i)
            policy.allocate(hs, v)
            placements.append(v.host.host_id)
        assert placements == [0, 1, 2, 0, 1, 2]

    def test_skips_unsuitable(self):
        hs = hosts([1, 4])
        policy = VmAllocationRoundRobin()
        a, b, c = vm(0), vm(1), vm(2)
        policy.allocate(hs, a)
        policy.allocate(hs, b)
        policy.allocate(hs, c)
        assert a.host.host_id == 0
        assert b.host.host_id == 1
        assert c.host.host_id == 1  # host 0 is full, rotation skips it


class TestConsolidating:
    def test_packs_most_used_host_first(self):
        from repro.cloud.vm_allocation import VmAllocationConsolidating

        hs = hosts([4, 4])
        policy = VmAllocationConsolidating()
        placements = []
        for i in range(6):
            v = vm(i)
            assert policy.allocate(hs, v)
            placements.append(v.host.host_id)
        # First host is filled completely before the second is touched.
        assert placements == [0, 0, 0, 0, 1, 1]

    def test_prefers_fuller_host(self):
        from repro.cloud.vm_allocation import VmAllocationConsolidating

        hs = hosts([8, 2])
        policy = VmAllocationConsolidating()
        policy.allocate(hs, vm(0))  # host 1 (2 free PEs < 8)
        assert hs[1].vm_count == 1
        v = vm(1)
        policy.allocate(hs, v)
        assert v.host is hs[1]

    def test_returns_none_when_full(self):
        from repro.cloud.vm_allocation import VmAllocationConsolidating

        hs = hosts([1])
        policy = VmAllocationConsolidating()
        assert policy.allocate(hs, vm(0))
        assert policy.select_host(hs, vm(1)) is None
