"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.base import SchedulingContext
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario
from repro.workloads.spec import (
    CloudletSpec,
    DatacenterSpec,
    ScenarioSpec,
    VmSpec,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_scenario() -> ScenarioSpec:
    """4 hand-built heterogeneous VMs in 2 datacenters, 8 cloudlets."""
    from repro.cloud.characteristics import DatacenterCharacteristics

    return ScenarioSpec(
        name="tiny",
        datacenters=(
            DatacenterSpec(
                characteristics=DatacenterCharacteristics(
                    cost_per_mem=0.01, cost_per_storage=0.001, cost_per_bw=0.01
                )
            ),
            DatacenterSpec(
                characteristics=DatacenterCharacteristics(
                    cost_per_mem=0.05, cost_per_storage=0.004, cost_per_bw=0.05
                )
            ),
        ),
        vms=(
            VmSpec(mips=500.0),
            VmSpec(mips=1000.0),
            VmSpec(mips=2000.0),
            VmSpec(mips=4000.0),
        ),
        cloudlets=tuple(
            CloudletSpec(length=float(length))
            for length in (1000, 2000, 4000, 8000, 16000, 3000, 5000, 7000)
        ),
        vm_datacenter=(0, 1, 0, 1),
        seed=7,
    )


@pytest.fixture
def tiny_context(tiny_scenario) -> SchedulingContext:
    return SchedulingContext.from_scenario(tiny_scenario, seed=42)


@pytest.fixture
def small_hetero() -> ScenarioSpec:
    return heterogeneous_scenario(num_vms=12, num_cloudlets=60, num_datacenters=3, seed=5)


@pytest.fixture
def small_homog() -> ScenarioSpec:
    return homogeneous_scenario(num_vms=10, num_cloudlets=55, num_datacenters=2, seed=5)
