"""Simulation engine: registration, dispatch, clock semantics."""

from __future__ import annotations

import pytest

from repro.core.engine import Simulation, SimulationError
from repro.core.entity import Entity
from repro.core.tags import EventTag


class Recorder(Entity):
    """Test entity that records every delivered event."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.events = []
        self.started = False
        self.shutdown_called = False

    def start(self) -> None:
        self.started = True

    def shutdown(self) -> None:
        self.shutdown_called = True

    def process_event(self, event) -> None:
        self.events.append((self.now, event.tag, event.data))


class Echoer(Recorder):
    """Replies to every NONE event with one TIMER event after a delay."""

    def __init__(self, name: str, reply_delay: float = 1.0, max_replies: int = 3) -> None:
        super().__init__(name)
        self.reply_delay = reply_delay
        self.max_replies = max_replies
        self.sent = 0

    def process_event(self, event) -> None:
        super().process_event(event)
        if event.tag is EventTag.NONE and self.sent < self.max_replies:
            self.sent += 1
            self.send(event.src, self.reply_delay, EventTag.TIMER, data=self.sent)


class TestRegistration:
    def test_register_assigns_sequential_ids(self):
        sim = Simulation()
        a, b = Recorder("a"), Recorder("b")
        assert sim.register(a) == 0
        assert sim.register(b) == 1
        assert a.id == 0 and b.id == 1

    def test_register_all(self):
        sim = Simulation()
        entities = [Recorder(f"e{i}") for i in range(4)]
        assert sim.register_all(entities) == [0, 1, 2, 3]

    def test_duplicate_name_rejected(self):
        sim = Simulation()
        sim.register(Recorder("dup"))
        with pytest.raises(SimulationError, match="duplicate"):
            sim.register(Recorder("dup"))

    def test_lookup_by_name_and_id(self):
        sim = Simulation()
        a = Recorder("a")
        sim.register(a)
        assert sim.entity("a") is a
        assert sim.entity(0) is a

    def test_lookup_unknown(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.entity("ghost")
        with pytest.raises(SimulationError):
            sim.entity(99)

    def test_empty_entity_name_rejected(self):
        with pytest.raises(ValueError):
            Recorder("")

    def test_double_attach_rejected(self):
        sim1, sim2 = Simulation(), Simulation()
        a = Recorder("a")
        sim1.register(a)
        with pytest.raises(RuntimeError, match="already attached"):
            sim2.register(a)

    def test_unattached_entity_has_no_sim(self):
        a = Recorder("a")
        assert a.id == -1
        with pytest.raises(RuntimeError, match="not attached"):
            _ = a.sim


class TestRunLoop:
    def test_delivers_in_time_order(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=2.0, src=-1, dst=0, tag=EventTag.NONE, data="b")
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE, data="a")
        end = sim.run()
        assert end == 2.0
        assert [d for _, _, d in r.events] == ["a", "b"]

    def test_start_hooks_fire_before_events(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=0.0, src=-1, dst=0, tag=EventTag.NONE)
        assert not r.started
        sim.run()
        assert r.started

    def test_shutdown_hooks_fire_on_drain(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.run()
        assert r.shutdown_called

    def test_clock_advances_monotonically(self):
        sim = Simulation()
        e = Echoer("e", reply_delay=2.0)
        r = Recorder("r")
        sim.register_all([e, r])
        sim.schedule(delay=1.0, src=r.id, dst=e.id, tag=EventTag.NONE)
        sim.run()
        times = [t for t, _, _ in e.events + r.events]
        assert times == sorted(times)
        assert sim.now == 3.0  # 1.0 trigger + 2.0 reply

    def test_run_until_stops_clock(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE, data="x")
        sim.schedule(delay=10.0, src=-1, dst=0, tag=EventTag.NONE, data="y")
        end = sim.run(until=5.0)
        assert end == 5.0
        assert [d for _, _, d in r.events] == ["x"]
        # Resume to completion.
        end = sim.run()
        assert end == 10.0
        assert [d for _, _, d in r.events] == ["x", "y"]

    def test_run_max_events(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        for i in range(5):
            sim.schedule(delay=float(i), src=-1, dst=0, tag=EventTag.NONE, data=i)
        sim.run(max_events=2)
        assert len(r.events) == 2
        sim.run()
        assert len(r.events) == 5

    def test_events_processed_counter(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        for i in range(7):
            sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.run()
        assert sim.events_processed == 7

    def test_step_single_event(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE, data="only")
        event = sim.step()
        assert event is not None and event.data == "only"
        assert sim.step() is None

    def test_step_drain_terminates_like_run(self):
        # The step() that drains the queue must finalize exactly as run()
        # does: _finished set, _running cleared, shutdown hooks fired.
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        for i in range(3):
            sim.schedule(delay=float(i + 1), src=-1, dst=0, tag=EventTag.NONE, data=i)
        while sim.step() is not None:
            pass
        assert sim.finished
        assert not sim._running
        assert r.shutdown_called
        # run() after a stepped-to-completion sim is a no-op, like a rerun.
        assert sim.run() == sim.now

    def test_step_shutdown_fires_once(self):
        sim = Simulation()

        class CountingRecorder(Recorder):
            def __init__(self, name):
                super().__init__(name)
                self.shutdown_count = 0

            def shutdown(self):
                super().shutdown()
                self.shutdown_count += 1

        r = CountingRecorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.step()
        assert r.shutdown_count == 1
        sim.step()  # drained call: must not re-fire hooks
        sim.run()
        assert r.shutdown_count == 1

    def test_step_drain_on_started_sim_finalizes(self):
        # A sim partially advanced by run(max_events=...) and then stepped
        # past its last event must terminate, not linger in _running.
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.schedule(delay=2.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.run(max_events=1)
        assert not sim.finished
        assert sim.step() is not None
        assert sim.finished and r.shutdown_called

    def test_step_on_cancelled_out_queue_finalizes(self):
        # A sim can be left started with an empty queue and no finalize if
        # run(max_events=...) stops right after a handler's events were
        # cancelled; the next step() must notice the drain and terminate.
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        later = sim.schedule(delay=2.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.run(max_events=1)
        sim.cancel(later)
        assert not sim.finished
        assert sim.step() is None
        assert sim.finished and r.shutdown_called

    def test_schedule_negative_delay_rejected(self):
        sim = Simulation()
        sim.register(Recorder("r"))
        with pytest.raises(SimulationError, match="negative delay"):
            sim.schedule(delay=-0.5, src=-1, dst=0, tag=EventTag.NONE)

    def test_schedule_to_unknown_destination_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError, match="unknown destination"):
            sim.schedule(delay=0.0, src=-1, dst=0, tag=EventTag.NONE)

    def test_cancel_pending_event(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        e = sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        assert sim.cancel(e)
        sim.run()
        assert r.events == []

    def test_trace_records_events(self):
        sim = Simulation(trace=True)
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE, data="t")
        sim.run()
        assert len(sim.trace_log) == 1
        assert sim.trace_log[0].data == "t"

    def test_register_after_run_rejected(self):
        sim = Simulation()
        sim.register(Recorder("r"))
        sim.run()
        with pytest.raises(SimulationError):
            sim.register(Recorder("late"))

    def test_run_on_finished_sim_is_noop(self):
        sim = Simulation()
        r = Recorder("r")
        sim.register(r)
        sim.schedule(delay=3.0, src=-1, dst=0, tag=EventTag.NONE)
        assert sim.run() == 3.0
        assert sim.run() == 3.0
        assert len(r.events) == 1


class TestMessaging:
    def test_entity_send_and_send_now(self):
        sim = Simulation()
        a, b = Recorder("a"), Recorder("b")
        sim.register_all([a, b])
        sim.schedule(delay=1.0, src=-1, dst=a.id, tag=EventTag.NONE)

        class Kicker(Recorder):
            def process_event(self, event):
                super().process_event(event)

        # Drive manually: deliver, then have `a` send to `b`.
        sim.run()
        a.send(b, 1.0, EventTag.TIMER, data="later")
        a.send_now(b, EventTag.NONE, data="now")
        sim.run()
        assert [d for _, _, d in b.events] == ["now", "later"]

    def test_schedule_self(self):
        sim = Simulation()

        class SelfTimer(Recorder):
            def start(self):
                super().start()
                self.schedule_self(2.5, EventTag.TIMER, data="ping")

        s = SelfTimer("s")
        sim.register(s)
        sim.run()
        assert [(t, d) for t, _, d in s.events] == [(2.5, "ping")]

    def test_send_by_id(self):
        sim = Simulation()
        a, b = Recorder("a"), Recorder("b")
        sim.register_all([a, b])
        a.send(b.id, 0.5, EventTag.NONE, data=42)
        sim.run()
        assert b.events == [(0.5, EventTag.NONE, 42)]
