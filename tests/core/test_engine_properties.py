"""Property-based / fuzz tests for the DES kernel.

These push randomized event graphs through the engine and assert the
invariants every consumer of the kernel relies on: monotone clock,
complete delivery, deterministic replay.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Simulation
from repro.core.entity import Entity
from repro.core.tags import EventTag


class Relay(Entity):
    """Forwards each received token to a pseudo-random peer a limited number
    of times, recording the delivery order."""

    def __init__(self, name: str, fanout_limit: int) -> None:
        super().__init__(name)
        self.fanout_limit = fanout_limit
        self.log: list[tuple[float, int]] = []

    def process_event(self, event) -> None:
        hops = event.data
        self.log.append((self.now, hops))
        if hops < self.fanout_limit:
            peers = len(self.sim.entities)
            target = (self.id + hops + 1) % peers
            delay = 0.5 + (hops % 3) * 0.25
            self.send(target, delay, EventTag.NONE, data=hops + 1)


def run_relay_network(num_entities: int, seeds: list[tuple[float, int]], fanout: int):
    sim = Simulation()
    relays = [Relay(f"r{i}", fanout) for i in range(num_entities)]
    sim.register_all(relays)
    for delay, dst in seeds:
        sim.schedule(delay=delay, src=-1, dst=dst % num_entities, tag=EventTag.NONE, data=0)
    sim.run()
    return sim, relays


class TestKernelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        num_entities=st.integers(min_value=1, max_value=8),
        seeds=st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.integers(min_value=0, max_value=100)),
            min_size=1,
            max_size=10,
        ),
        fanout=st.integers(min_value=0, max_value=6),
    )
    def test_clock_monotone_and_counts_consistent(self, num_entities, seeds, fanout):
        sim, relays = run_relay_network(num_entities, seeds, fanout)
        all_times = [t for r in relays for t, _ in r.log]
        # Every seeded chain delivers exactly fanout+1 events.
        assert sim.events_processed == len(seeds) * (fanout + 1)
        assert sim.events_processed == len(all_times)
        # Clock ends at the max delivery time.
        if all_times:
            assert sim.now == max(all_times)

    @settings(max_examples=20, deadline=None)
    @given(
        seeds=st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.integers(min_value=0, max_value=100)),
            min_size=1,
            max_size=8,
        )
    )
    def test_deterministic_replay(self, seeds):
        _, first = run_relay_network(4, seeds, fanout=4)
        _, second = run_relay_network(4, seeds, fanout=4)
        for a, b in zip(first, second):
            assert a.log == b.log

    @settings(max_examples=20, deadline=None)
    @given(
        until=st.floats(min_value=0.1, max_value=5.0),
        seeds=st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.integers(min_value=0, max_value=3)),
            min_size=1,
            max_size=6,
        ),
    )
    def test_run_until_then_resume_equals_full_run(self, until, seeds):
        sim_full, relays_full = run_relay_network(4, seeds, fanout=3)
        sim_split = Simulation()
        relays_split = [Relay(f"r{i}", 3) for i in range(4)]
        sim_split.register_all(relays_split)
        for delay, dst in seeds:
            sim_split.schedule(
                delay=delay, src=-1, dst=dst % 4, tag=EventTag.NONE, data=0
            )
        sim_split.run(until=until)
        sim_split.run()
        assert sim_split.events_processed == sim_full.events_processed
        for a, b in zip(relays_full, relays_split):
            assert a.log == b.log


class TestSimulationStressSmall:
    def test_many_simultaneous_events_fifo(self):
        sim = Simulation()

        class Sink(Entity):
            def __init__(self):
                super().__init__("sink")
                self.order = []

            def process_event(self, event):
                self.order.append(event.data)

        sink = Sink()
        sim.register(sink)
        rng = np.random.default_rng(0)
        payloads = list(range(500))
        for p in payloads:
            sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE, data=p)
        sim.run()
        assert sink.order == payloads
