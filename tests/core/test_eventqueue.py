"""EventQueue: ordering, cancellation, liveness."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.eventqueue import EventQueue
from repro.core.tags import EventTag


def make_queue() -> EventQueue:
    return EventQueue()


class TestPushPop:
    def test_empty_queue_is_falsy(self):
        q = make_queue()
        assert not q
        assert len(q) == 0
        assert q.peek() is None
        assert q.next_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            make_queue().pop()

    def test_single_event_roundtrip(self):
        q = make_queue()
        e = q.push(time=5.0, src=0, dst=1, tag=EventTag.NONE, data="x")
        assert len(q) == 1
        assert q.peek() is e
        assert q.next_time() == 5.0
        assert q.pop() is e
        assert not q

    def test_orders_by_time(self):
        q = make_queue()
        q.push(time=3.0, src=0, dst=0, tag=EventTag.NONE, data="c")
        q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data="a")
        q.push(time=2.0, src=0, dst=0, tag=EventTag.NONE, data="b")
        assert [q.pop().data for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        q = make_queue()
        for i in range(10):
            q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data=i)
        assert [q.pop().data for _ in range(10)] == list(range(10))

    def test_priority_breaks_time_ties(self):
        q = make_queue()
        q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data="late", priority=5)
        q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data="early", priority=0)
        assert q.pop().data == "early"
        assert q.pop().data == "late"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_queue().push(time=-1.0, src=0, dst=0, tag=EventTag.NONE)

    def test_event_fields(self):
        q = make_queue()
        e = q.push(time=2.0, src=3, dst=4, tag=EventTag.VM_CREATE, data={"k": 1})
        assert (e.time, e.src, e.dst, e.tag, e.data) == (
            2.0,
            3,
            4,
            EventTag.VM_CREATE,
            {"k": 1},
        )


class TestCancellation:
    def test_cancel_removes_from_pop(self):
        q = make_queue()
        a = q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data="a")
        b = q.push(time=2.0, src=0, dst=0, tag=EventTag.NONE, data="b")
        assert q.cancel(a)
        assert len(q) == 1
        assert q.pop() is b

    def test_cancel_twice_returns_false(self):
        q = make_queue()
        e = q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE)
        assert q.cancel(e)
        assert not q.cancel(e)
        assert len(q) == 0

    def test_cancelled_head_skipped_by_peek(self):
        q = make_queue()
        a = q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data="a")
        b = q.push(time=2.0, src=0, dst=0, tag=EventTag.NONE, data="b")
        q.cancel(a)
        assert q.peek() is b
        assert q.next_time() == 2.0

    def test_cancel_where_matches_predicate(self):
        q = make_queue()
        for i in range(6):
            q.push(time=float(i), src=0, dst=i % 2, tag=EventTag.NONE, data=i)
        n = q.cancel_where(lambda e: e.dst == 0)
        assert n == 3
        remaining = [q.pop().data for _ in range(len(q))]
        assert remaining == [1, 3, 5]

    def test_cancel_where_ignores_already_dead(self):
        q = make_queue()
        e = q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE)
        q.cancel(e)
        assert q.cancel_where(lambda _: True) == 0

    def test_clear(self):
        q = make_queue()
        for i in range(5):
            q.push(time=float(i), src=0, dst=0, tag=EventTag.NONE)
        q.clear()
        assert not q
        assert q.peek() is None

    def test_iter_live_excludes_cancelled(self):
        q = make_queue()
        a = q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data="a")
        q.push(time=2.0, src=0, dst=0, tag=EventTag.NONE, data="b")
        q.cancel(a)
        assert [e.data for e in q.iter_live()] == ["b"]


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, times):
        q = make_queue()
        for t in times:
            q.push(time=t, src=0, dst=0, tag=EventTag.NONE)
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=100,
        )
    )
    def test_live_count_matches_survivors(self, entries):
        q = make_queue()
        events = [
            q.push(time=t, src=0, dst=0, tag=EventTag.NONE) for t, _ in entries
        ]
        survivors = 0
        for event, (_, keep) in zip(events, entries):
            if keep:
                survivors += 1
            else:
                q.cancel(event)
        assert len(q) == survivors
        assert sum(1 for _ in q.iter_live()) == survivors
        popped = 0
        while q:
            q.pop()
            popped += 1
        assert popped == survivors

    @given(st.data())
    def test_same_time_events_preserve_insertion_order(self, data):
        n = data.draw(st.integers(min_value=2, max_value=50))
        q = make_queue()
        for i in range(n):
            q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE, data=i)
        assert [q.pop().data for _ in range(n)] == list(range(n))
