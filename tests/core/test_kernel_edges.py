"""Remaining kernel edge branches."""

from __future__ import annotations

import pytest

from repro.core.engine import Simulation
from repro.core.entity import Entity
from repro.core.eventqueue import EventQueue
from repro.core.tags import EventTag


class Sink(Entity):
    def __init__(self, name="sink"):
        super().__init__(name)
        self.received = []

    def process_event(self, event):
        self.received.append(event)


class TestEventQueueEdges:
    def test_clear_then_reuse(self):
        q = EventQueue()
        q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE)
        q.clear()
        e = q.push(time=2.0, src=0, dst=0, tag=EventTag.NONE)
        assert q.pop() is e

    def test_cancel_all_then_next_time_none(self):
        q = EventQueue()
        e = q.push(time=1.0, src=0, dst=0, tag=EventTag.NONE)
        q.cancel(e)
        assert q.next_time() is None
        assert not q

    def test_sort_key_exposed(self):
        q = EventQueue()
        e = q.push(time=3.0, src=0, dst=0, tag=EventTag.NONE, priority=2)
        assert e.sort_key() == (3.0, 2, e.serial)


class TestSimulationEdges:
    def test_step_runs_start_hooks_once(self):
        sim = Simulation()

        class Starter(Sink):
            def __init__(self):
                super().__init__("starter")
                self.starts = 0

            def start(self):
                self.starts += 1

        s = Starter()
        sim.register(s)
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.schedule(delay=2.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.step()
        sim.step()
        assert s.starts == 1

    def test_trace_in_step_mode(self):
        sim = Simulation(trace=True)
        sim.register(Sink())
        sim.schedule(delay=1.0, src=-1, dst=0, tag=EventTag.NONE, data="x")
        sim.step()
        assert sim.trace_log[0].data == "x"

    def test_cancel_where_through_simulation(self):
        sim = Simulation()
        sink = Sink()
        sim.register(sink)
        for i in range(4):
            sim.schedule(delay=float(i + 1), src=-1, dst=0, tag=EventTag.NONE, data=i)
        assert sim.cancel_where(lambda e: e.data in (1, 2)) == 2
        assert sim.pending_events() == 2
        sim.run()
        assert [e.data for e in sink.received] == [0, 3]

    def test_until_exactly_on_event_time_delivers_it(self):
        sim = Simulation()
        sink = Sink()
        sim.register(sink)
        sim.schedule(delay=5.0, src=-1, dst=0, tag=EventTag.NONE)
        sim.run(until=5.0)
        assert len(sink.received) == 1

    def test_empty_simulation_run_is_noop(self):
        sim = Simulation()
        sim.register(Sink())
        assert sim.run() == 0.0
        assert sim.events_processed == 0
