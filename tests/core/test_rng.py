"""RNG discipline: determinism and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import RngStreams, spawn_rng


class TestSpawnRng:
    def test_same_seed_label_is_bit_identical(self):
        a = spawn_rng(42, "workload")
        b = spawn_rng(42, "workload")
        assert np.array_equal(a.random(100), b.random(100))

    def test_different_labels_are_independent(self):
        a = spawn_rng(42, "workload").random(100)
        b = spawn_rng(42, "aco").random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x").random(50)
        b = spawn_rng(2, "x").random(50)
        assert not np.array_equal(a, b)

    def test_none_seed_allowed(self):
        rng = spawn_rng(None, "anything")
        assert 0.0 <= rng.random() < 1.0

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rng(-1, "x")

    def test_empty_label_is_valid(self):
        assert spawn_rng(7).random() == spawn_rng(7, "").random()


class TestRngStreams:
    def test_get_memoises(self):
        streams = RngStreams(seed=9)
        a = streams.get("a")
        a.random(10)  # advance the stream
        assert streams.get("a") is a

    def test_fresh_restarts_sequence(self):
        streams = RngStreams(seed=9)
        first = streams.get("a").random(5)
        fresh = streams.fresh("a").random(5)
        assert np.array_equal(first, fresh)

    def test_labels_lists_instantiated(self):
        streams = RngStreams(seed=0)
        streams.get("x")
        streams.get("y")
        assert sorted(streams.labels()) == ["x", "y"]

    def test_streams_match_spawn(self):
        assert np.array_equal(
            RngStreams(seed=3).get("lbl").random(8), spawn_rng(3, "lbl").random(8)
        )
