"""Incremental sweeps: cache granularity, warm determinism, parallel hits."""

from __future__ import annotations

import pytest

from repro.cache import ResultCache
from repro.experiments.runner import run_point, run_sweep
from repro.experiments.scenarios import SchedulerFactory
from repro.obs.telemetry import TELEMETRY
from repro.workloads.heterogeneous import heterogeneous_scenario


def factory(num_vms, num_cloudlets, seed):
    return heterogeneous_scenario(num_vms, num_cloudlets, num_datacenters=2, seed=seed)


SCHEDULERS = {
    "basetest": SchedulerFactory("basetest"),
    "random": SchedulerFactory("random"),
}

SWEEP = dict(
    scenario_factory=factory,
    scheduler_factories=SCHEDULERS,
    vm_counts=(4, 6),
    num_cloudlets=24,
    seeds=(0, 1),
    engine="fast",
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRunPointCache:
    def test_hit_replays_stored_result(self, cache):
        scenario = factory(4, 24, 0)
        from repro.schedulers import RoundRobinScheduler

        cold = run_point(scenario, RoundRobinScheduler(), seed=0, engine="fast", cache=cache)
        warm = run_point(scenario, RoundRobinScheduler(), seed=0, engine="fast", cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        # Byte-equal including the wall clock: the hit replays the cold
        # run's measured scheduling_time.
        assert warm.scheduling_time == cold.scheduling_time
        assert warm.makespan == cold.makespan

    def test_path_accepted_directly(self, tmp_path):
        scenario = factory(4, 24, 0)
        from repro.schedulers import RoundRobinScheduler

        run_point(scenario, RoundRobinScheduler(), seed=0, engine="fast", cache=tmp_path / "c")
        again = ResultCache(tmp_path / "c")
        assert len(again) == 1


class TestSerialSweepCache:
    def test_warm_records_byte_equal_to_cold(self, cache):
        cold = run_sweep(**SWEEP, cache=cache)
        warm = run_sweep(**SWEEP, cache=cache)
        # Full records, wall clock included — SweepRecord is frozen, so
        # == is a field-by-field comparison.
        assert warm == cold
        assert cache.misses == len(cold)
        assert cache.hits == len(cold)

    def test_cache_off_matches_cache_on(self, cache):
        plain = run_sweep(**SWEEP)
        cached = run_sweep(**SWEEP, cache=cache)
        for a, b in zip(plain, cached):
            assert a.scheduler == b.scheduler
            assert a.makespan == b.makespan
            assert a.total_cost == b.total_cost

    def test_extending_vm_counts_computes_only_new_cells(self, cache):
        run_sweep(**SWEEP, cache=cache)
        misses_before = cache.misses
        extended = {**SWEEP, "vm_counts": (4, 6, 8)}
        records = run_sweep(**extended, cache=cache)
        # Only the (8 VMs × 2 seeds × 2 schedulers) cells are new.
        assert cache.misses - misses_before == 4
        assert len(records) == 12

    def test_adding_seed_computes_only_new_cells(self, cache):
        run_sweep(**SWEEP, cache=cache)
        misses_before = cache.misses
        run_sweep(**{**SWEEP, "seeds": (0, 1, 2)}, cache=cache)
        assert cache.misses - misses_before == 4  # 2 vms × 1 seed × 2 scheds

    def test_adding_scheduler_computes_only_new_cells(self, cache):
        run_sweep(**SWEEP, cache=cache)
        misses_before = cache.misses
        more = {**SCHEDULERS, "greedy-mct": SchedulerFactory("greedy-mct")}
        records = run_sweep(**{**SWEEP, "scheduler_factories": more}, cache=cache)
        assert cache.misses - misses_before == 4  # 2 vms × 2 seeds × 1 sched
        assert len(records) == 12


class TestParallelSweepCache:
    def test_parallel_warm_after_serial_cold(self, cache):
        cold = run_sweep(**SWEEP, cache=cache)
        warm = run_sweep(**SWEEP, cache=cache, workers=2)
        assert warm == cold
        # Parent-side resolution: the warm pass probed every cell in the
        # parent and dispatched nothing, so the instance counts all hits.
        assert cache.hits == len(cold)

    def test_serial_warm_after_parallel_cold(self, cache):
        cold = run_sweep(**SWEEP, cache=cache, workers=2)
        assert len(cache) == len(cold)  # workers published every miss
        warm = run_sweep(**SWEEP, cache=cache)
        assert warm == cold

    def test_parallel_partial_warm(self, cache):
        run_sweep(**SWEEP, cache=cache)
        hits_before, misses_before = cache.hits, cache.misses
        extended = {**SWEEP, "vm_counts": (4, 6, 8)}
        records = run_sweep(**extended, cache=cache, workers=2)
        assert len(records) == 12
        assert cache.hits - hits_before == 8
        assert cache.misses - misses_before == 4
        # The computed cells were published; a rerun is all hits.
        again = run_sweep(**extended, cache=cache, workers=2)
        assert again == records

    def test_parallel_telemetry_counts_each_event_once(self, cache):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            run_sweep(**SWEEP, cache=cache, workers=2)
            counters = TELEMETRY.snapshot().counters
            # 8 misses counted parent-side at probe time; bytes_written
            # ships back from the workers that published the entries.
            assert counters["cache.misses"] == 8
            assert counters.get("cache.hits", 0) == 0
            assert counters["cache.bytes_written"] > 0
            TELEMETRY.reset()
            run_sweep(**SWEEP, cache=cache, workers=2)
            counters = TELEMETRY.snapshot().counters
            assert counters["cache.hits"] == 8
            assert counters.get("cache.misses", 0) == 0
            assert counters["cache.bytes_read"] > 0
        finally:
            TELEMETRY.reset()
            TELEMETRY.disable()


class TestZooSweepCache:
    """Optimizer-kernel zoo cells replay byte-equal from the cache.

    Differential round-trip: a cold sweep populates the cache, a warm
    sweep must replay it byte-for-byte (wall clock included — hits ship
    the cold run's measured scheduling_time), both serially and through
    the spawn-pool transport.
    """

    ZOO = {
        "gsa": SchedulerFactory("gsa", kwargs=(("num_agents", 4), ("max_iterations", 3))),
        "psogsa": SchedulerFactory("psogsa", kwargs=(("num_particles", 4), ("max_iterations", 3))),
        "cuckoo-sos": SchedulerFactory("cuckoo-sos", kwargs=(("ecosystem_size", 4), ("max_iterations", 2))),
    }

    SWEEP = dict(
        scenario_factory=factory,
        scheduler_factories=ZOO,
        vm_counts=(4, 6),
        num_cloudlets=20,
        seeds=(0, 1),
        engine="fast",
    )

    def test_serial_cold_warm_round_trip(self, cache):
        cold = run_sweep(**self.SWEEP, cache=cache)
        warm = run_sweep(**self.SWEEP, cache=cache)
        assert warm == cold
        assert cache.misses == len(cold) == 12
        assert cache.hits == len(cold)

    def test_parallel_cold_warm_round_trip(self, cache):
        cold = run_sweep(**self.SWEEP, cache=cache, workers=2)
        assert len(cache) == len(cold) == 12
        warm = run_sweep(**self.SWEEP, cache=cache, workers=2)
        assert warm == cold

    def test_parallel_warm_replays_serial_cold(self, cache):
        cold = run_sweep(**self.SWEEP, cache=cache)
        warm = run_sweep(**self.SWEEP, cache=cache, workers=2)
        assert warm == cold


class TestOnlineEngineCache:
    """Dynamic-surface cells (timeline/control) key and replay correctly."""

    def _point(self, cache, **kwargs):
        from repro.schedulers.online import OnlineGreedyMCT
        from repro.workloads.heterogeneous import heterogeneous_scenario

        scenario = heterogeneous_scenario(4, 12, seed=2)
        return run_point(
            scenario, OnlineGreedyMCT(), seed=0, engine="online",
            cache=cache, **kwargs,
        )

    def test_online_hit_replays(self, cache):
        from repro.workloads.timeline import Timeline, VmFault

        timeline = Timeline(
            entries=(VmFault(at="+1s", vm_index=0, downtime="3s"),), name="c"
        )
        cold = self._point(cache, timeline=timeline)
        warm = self._point(cache, timeline=timeline)
        assert (cache.hits, cache.misses) == (1, 1)
        assert warm.makespan == cold.makespan
        assert warm.info["faults"] == 1

    def test_dynamic_configs_get_distinct_keys(self, cache):
        from repro.cloud.control import ControlConfig
        from repro.workloads.timeline import Timeline, VmFault

        timeline = Timeline(
            entries=(VmFault(at="+1s", vm_index=0, downtime="3s"),), name="c"
        )
        self._point(cache)
        self._point(cache, timeline=timeline)
        self._point(cache, timeline=timeline, control=ControlConfig(standby_vms=1))
        self._point(cache, standby_vms=1)
        assert (cache.hits, cache.misses) == (0, 4)
        assert len(cache) == 4

    def test_dynamic_kwargs_rejected_on_other_engines(self):
        from repro.schedulers import RoundRobinScheduler
        from repro.workloads.timeline import Timeline, VmFault

        scenario = heterogeneous_scenario(4, 12, seed=2)
        timeline = Timeline(
            entries=(VmFault(at="+1s", vm_index=0, downtime="3s"),), name="c"
        )
        with pytest.raises(ValueError, match="require engine='online'"):
            run_point(
                scenario, RoundRobinScheduler(), seed=0, engine="fast",
                timeline=timeline,
            )
