"""Extension experiments (energy / online / SLA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.extensions import (
    EXTENSION_EXPERIMENTS,
    run_ext_energy,
    run_ext_online,
    run_ext_sla,
)
from repro.experiments.figures import FigureData


@pytest.fixture(autouse=True)
def shrink_sizes(monkeypatch):
    """Make the extension sweeps CI-sized."""
    from repro.experiments import extensions

    monkeypatch.setattr(extensions, "_sizes", lambda preset: (60, 10, (0,)))


class TestRegistry:
    def test_three_extensions_registered(self):
        assert set(EXTENSION_EXPERIMENTS) == {"ext-energy", "ext-online", "ext-sla"}

    def test_cli_accepts_extension_target(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["ext-energy", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ext-energy" in out
        assert (tmp_path / "ext-energy.csv").exists()

    def test_list_mentions_extensions(self, capsys):
        from repro.experiments.__main__ import main

        main(["list"])
        out = capsys.readouterr().out
        assert "ext-sla" in out


class TestEnergy:
    def test_series_shape_and_hbo_efficiency(self):
        data = run_ext_energy("quick")
        assert isinstance(data, FigureData)
        assert set(data.series) == {"antcolony", "basetest", "honeybee", "rbs"}
        # Faster completion -> less idle burn: the metaheuristics must use
        # less energy than the Base Test at every sweep point.
        for i in range(len(data.x)):
            assert data.series["antcolony"][i] < data.series["basetest"][i]
        assert all(v > 0 for ys in data.series.values() for v in ys)


class TestOnline:
    def test_flow_time_grows_with_rate_pressure(self):
        data = run_ext_online("quick")
        assert data.x_key == "arrival_rate"
        # Less arrival spacing (higher rate) cannot reduce mean flow time.
        for name in ("online-roundrobin", "online-greedy-mct"):
            ys = data.series[name]
            assert ys[-1] >= ys[0]
        # Load-aware beats blind cyclic at the highest pressure point.
        assert data.series["online-greedy-mct"][-1] < data.series["online-roundrobin"][-1]


class TestSla:
    def test_violations_fall_with_slack(self):
        data = run_ext_sla("quick")
        assert data.x_key == "slack_factor"
        for name, ys in data.series.items():
            assert ys[0] >= ys[-1], name
            assert all(0.0 <= v <= 100.0 for v in ys)
        # EDF never worse than the Base Test on average across the sweep.
        assert np.mean(data.series["deadline-edf"]) <= np.mean(
            data.series["basetest"]
        ) + 1.0
