"""Figure definitions and aggregation."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    EXPERIMENTS,
    FigureData,
    aggregate,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import SweepRecord
from repro.experiments.scenarios import Preset, preset_config


def make_records(schedulers=("basetest", "rbs"), vm_counts=(4, 8), seeds=(0, 1)):
    records = []
    for name in schedulers:
        for v in vm_counts:
            for s in seeds:
                records.append(
                    SweepRecord(
                        scheduler=name,
                        num_vms=v,
                        num_cloudlets=10,
                        seed=s,
                        scheduling_time=0.001 * v,
                        makespan=100.0 / v + s,
                        time_imbalance=1.0,
                        total_cost=50.0,
                        events_processed=1,
                    )
                )
    return records


class TestDefinitions:
    def test_all_eight_figures_defined(self):
        assert set(EXPERIMENTS) == {
            "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d",
        }

    def test_every_definition_has_expectation_and_config(self):
        for experiment_id, definition in EXPERIMENTS.items():
            assert definition.expectation
            for preset in Preset:
                config = definition.config(preset)
                assert config.vm_counts
                assert config.num_cloudlets > 0
                assert config.seeds

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("FIG6A").experiment_id == "fig6a"

    def test_get_experiment_unknown(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")

    def test_scenario_factories(self):
        homog = EXPERIMENTS["fig4a"].scenario_factory()(4, 6, 0)
        hetero = EXPERIMENTS["fig6a"].scenario_factory()(4, 6, 0)
        assert "homogeneous" in homog.name
        assert "heterogeneous" in hetero.name

    def test_preset_config_unknown_figure(self):
        with pytest.raises(ValueError, match="unknown figure"):
            preset_config("fig7x", Preset.QUICK)


class TestAggregate:
    def test_series_are_means_over_seeds(self):
        import dataclasses

        definition = dataclasses.replace(
            EXPERIMENTS["fig6a"], schedulers=("basetest", "rbs")
        )
        records = make_records()
        data = aggregate(definition, records, [4, 8])
        # mean over seeds 0,1 of 100/v + s = 100/v + 0.5
        assert data.series["basetest"] == pytest.approx([25.5, 13.0])
        assert data.ci["basetest"][0] > 0
        assert data.x == [4, 8]

    def test_missing_records_detected(self):
        import dataclasses

        definition = dataclasses.replace(
            EXPERIMENTS["fig6a"], schedulers=("basetest", "honeybee")
        )
        with pytest.raises(RuntimeError, match="no records"):
            aggregate(definition, make_records(), [4, 8])

    def test_figure_data_helpers(self):
        import dataclasses

        definition = dataclasses.replace(
            EXPERIMENTS["fig6a"], schedulers=("basetest", "rbs")
        )
        data = aggregate(definition, make_records(), [4, 8])
        finals = data.final_values()
        assert finals["basetest"] == pytest.approx(13.0)
        rows = data.to_rows()
        assert len(rows) == 4  # 2 schedulers x 2 x-points
        assert rows[0]["experiment"] == "fig6a"


class TestRunExperimentSmall:
    def test_custom_tiny_sweep(self, monkeypatch):
        # Shrink the quick preset so the end-to-end path stays fast.
        from repro.experiments import figures as figures_module
        from repro.experiments.scenarios import SweepConfig

        tiny = SweepConfig(
            vm_counts=(4, 6),
            num_cloudlets=12,
            seeds=(0,),
            scheduler_kwargs={"antcolony": {"num_ants": 2, "max_iterations": 1}},
        )
        monkeypatch.setattr(
            figures_module.ExperimentDefinition,
            "config",
            lambda self, preset: tiny,
        )
        data = run_experiment("fig6a", preset="quick")
        assert isinstance(data, FigureData)
        assert data.x == [4, 6]
        assert set(data.series) == {"antcolony", "basetest", "honeybee", "rbs"}
        assert all(v > 0 for v in data.series["basetest"])
