"""Profiling helpers."""

from __future__ import annotations

import pytest

from repro.experiments.profiling import (
    ProfileReport,
    profile_callable,
    profile_scheduling,
    profile_simulation,
)
from repro.schedulers import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


class TestProfileCallable:
    def test_captures_result_and_stats(self):
        report = profile_callable(lambda: sum(range(1000)))
        assert report.result == 499500
        assert report.total_calls > 0
        assert "function calls" in report.text
        assert str(report) == report.text

    def test_propagates_exceptions(self):
        with pytest.raises(RuntimeError, match="boom"):
            profile_callable(lambda: (_ for _ in ()).throw(RuntimeError("boom")))

    def test_top_validated(self):
        with pytest.raises(ValueError):
            profile_callable(lambda: 1, top=0)


class TestDomainWrappers:
    def test_profile_scheduling(self):
        scenario = heterogeneous_scenario(5, 20, seed=0)
        report = profile_scheduling(RoundRobinScheduler(), scenario)
        assert isinstance(report, ProfileReport)
        assert report.result.assignment.shape == (20,)

    @pytest.mark.parametrize("engine", ["des", "fast"])
    def test_profile_simulation(self, engine):
        scenario = heterogeneous_scenario(5, 20, seed=0)
        report = profile_simulation(RoundRobinScheduler(), scenario, engine=engine)
        assert report.result.makespan > 0
