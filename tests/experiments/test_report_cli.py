"""Report rendering and the CLI entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import build_parser, main
from repro.experiments.figures import FigureData
from repro.experiments.report import figure_rows, render_figure, save_figure


@pytest.fixture
def figure_data() -> FigureData:
    return FigureData(
        experiment_id="fig6d",
        title="Processing cost, heterogeneous",
        xlabel="number of virtual machines",
        ylabel="processing cost",
        x=[50, 150],
        series={
            "antcolony": [100.0, 95.0],
            "basetest": [102.0, 98.0],
            "honeybee": [60.0, 55.0],
            "rbs": [101.0, 97.0],
        },
        ci={
            "antcolony": [1.0, 1.0],
            "basetest": [0.0, 0.0],
            "honeybee": [2.0, 2.0],
            "rbs": [1.5, 1.5],
        },
    )


class TestReport:
    def test_figure_rows_wide_format(self, figure_data):
        rows = figure_rows(figure_data)
        assert rows[0]["num_vms"] == 50
        assert rows[0]["honeybee"] == 60.0
        assert len(rows) == 2

    def test_render_contains_table_plot_and_checks(self, figure_data):
        text = render_figure(figure_data)
        assert "fig6d" in text
        assert "num_vms" in text
        assert "A=antcolony" in text
        assert "hbo-cheapest" in text  # shape check ran
        assert "[PASS]" in text

    def test_save_figure_writes_csv(self, figure_data, tmp_path):
        path = save_figure(figure_data, tmp_path)
        assert path.name == "fig6d.csv"
        content = path.read_text()
        assert "scheduler" in content
        assert "honeybee" in content


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "fig6d" in out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig6a"])
        assert args.preset == "quick"
        assert not args.verbose

    def test_end_to_end_tiny(self, monkeypatch, tmp_path, capsys):
        from repro.experiments import figures as figures_module
        from repro.experiments.scenarios import SweepConfig

        tiny = SweepConfig(
            vm_counts=(4,),
            num_cloudlets=8,
            seeds=(0,),
            scheduler_kwargs={"antcolony": {"num_ants": 2, "max_iterations": 1}},
        )
        monkeypatch.setattr(
            figures_module.ExperimentDefinition, "config", lambda self, preset: tiny
        )
        assert main(["fig6d", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig6d" in out
        assert (tmp_path / "fig6d.csv").exists()


class TestCompareTarget:
    def test_compare_prints_table(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--schedulers",
                    "basetest,greedy-mct",
                    "--vms",
                    "6",
                    "--cloudlets",
                    "30",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "basetest" in out and "greedy-mct" in out
        assert "makespan_s" in out

    def test_compare_homogeneous(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--schedulers",
                    "basetest",
                    "--scenario",
                    "homogeneous",
                    "--vms",
                    "4",
                    "--cloudlets",
                    "20",
                ]
            )
            == 0
        )
        assert "homogeneous" in capsys.readouterr().out

    def test_compare_unknown_scheduler(self, capsys):
        assert main(["compare", "--schedulers", "quantum"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err


class TestFigureJsonRoundTrip:
    def test_round_trip(self, figure_data, tmp_path):
        from repro.experiments.report import load_figure_json, save_figure_json

        path = save_figure_json(figure_data, tmp_path)
        restored = load_figure_json(path)
        assert restored.experiment_id == figure_data.experiment_id
        assert restored.series == figure_data.series
        assert restored.ci == figure_data.ci
        assert restored.x == figure_data.x
        assert restored.x_key == figure_data.x_key

    def test_rerender_from_json(self, figure_data, tmp_path):
        from repro.experiments.report import (
            load_figure_json,
            render_figure,
            save_figure_json,
        )

        path = save_figure_json(figure_data, tmp_path)
        text = render_figure(load_figure_json(path))
        assert "hbo-cheapest" in text

    def test_unknown_version_rejected(self, figure_data):
        from repro.experiments.figures import FigureData

        bad = figure_data.to_json_dict()
        bad["format_version"] = 9
        import pytest as _pytest

        with _pytest.raises(ValueError, match="format version"):
            FigureData.from_json_dict(bad)


class TestStormTarget:
    STORM_ARGS = [
        "storm",
        "--vms", "6",
        "--cloudlets", "24",
        "--policies", "greedy-mct",
        "--seeds", "0",
    ]

    def test_storm_runs_and_saves_report(self, tmp_path, capsys):
        assert main([*self.STORM_ARGS, "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "controlled_degradation" in out
        assert "uncontrolled" in out
        assert (tmp_path / "storm.json").exists()

    def test_storm_control_off_is_inert(self, tmp_path, capsys):
        assert main(
            [*self.STORM_ARGS, "--control", "off", "--out", str(tmp_path)]
        ) == 0
        import json as _json

        payload = _json.loads((tmp_path / "storm.json").read_text())
        assert payload["control"]["scale_up_backlog"] is None

    def test_storm_custom_timeline_file(self, tmp_path, capsys):
        import json as _json

        from repro.workloads.timeline import Timeline, VmFault

        timeline = Timeline(
            base_rate=8.0,
            entries=(VmFault(at="+2s", vm_index=1, downtime="4s"),),
            name="from-file",
        )
        spec = tmp_path / "timeline.json"
        spec.write_text(_json.dumps(timeline.to_dict()))
        assert main(
            [*self.STORM_ARGS, "--timeline", str(spec), "--out", str(tmp_path)]
        ) == 0
        payload = _json.loads((tmp_path / "storm.json").read_text())
        assert payload["timeline"] == "from-file"


class TestReportRendersChaosArtifacts:
    def test_storm_json_round_trips_through_report(self, tmp_path, capsys):
        assert main([
            "storm", "--vms", "6", "--cloudlets", "24",
            "--policies", "greedy-mct", "--seeds", "0",
            "--out", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path / "storm.json")]) == 0
        out = capsys.readouterr().out
        assert "storm-report" in out
        assert "controlled_degradation" in out
        assert "mean_degradation" in out

    def test_chaos_json_renders_rows(self, tmp_path, capsys):
        from repro.cloud.chaos import ChaosConfig, run_chaos_suite
        from repro.schedulers import RoundRobinScheduler
        from repro.workloads.heterogeneous import heterogeneous_scenario

        report = run_chaos_suite(
            heterogeneous_scenario(5, 20, seed=1),
            {"rr": RoundRobinScheduler()},
            seeds=(0,),
            config=ChaosConfig(num_vm_failures=1, num_stragglers=0),
        )
        path = report.save(tmp_path / "chaos.json")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "chaos-report" in out
        assert "resched_degradation" in out
