"""Sweep runner."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.figures import ScenarioFamily, get_experiment
from repro.experiments.runner import SweepRecord, run_point, run_sweep
from repro.experiments.scenarios import SchedulerFactory
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.random_assign import RandomScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


def factory(num_vms, num_cloudlets, seed):
    return heterogeneous_scenario(num_vms, num_cloudlets, num_datacenters=2, seed=seed)


class TestRunPoint:
    def test_des_engine(self, small_hetero):
        result = run_point(small_hetero, RoundRobinScheduler(), seed=0, engine="des")
        assert result.events_processed > 0

    def test_fast_engine(self, small_hetero):
        result = run_point(small_hetero, RoundRobinScheduler(), seed=0, engine="fast")
        assert result.events_processed == 0
        assert result.info["engine"] == "fast"

    def test_unknown_engine(self, small_hetero):
        with pytest.raises(ValueError, match="engine"):
            run_point(small_hetero, RoundRobinScheduler(), seed=0, engine="warp")


class TestRunSweep:
    def test_grid_size(self):
        records = run_sweep(
            scenario_factory=factory,
            scheduler_factories={
                "basetest": RoundRobinScheduler,
                "random": RandomScheduler,
            },
            vm_counts=[4, 8],
            num_cloudlets=20,
            seeds=[0, 1],
            engine="fast",
        )
        assert len(records) == 2 * 2 * 2
        assert {r.scheduler for r in records} == {"basetest", "random"}
        assert {r.num_vms for r in records} == {4, 8}
        assert {r.seed for r in records} == {0, 1}

    def test_records_have_metrics(self):
        records = run_sweep(
            scenario_factory=factory,
            scheduler_factories={"basetest": RoundRobinScheduler},
            vm_counts=[4],
            num_cloudlets=12,
            engine="des",
        )
        r = records[0]
        assert r.makespan > 0
        assert r.scheduling_time >= 0
        assert r.total_cost > 0
        assert r.num_cloudlets == 12

    def test_metric_lookup(self):
        record = SweepRecord(
            scheduler="x",
            num_vms=1,
            num_cloudlets=1,
            seed=0,
            scheduling_time=0.5,
            makespan=2.0,
            time_imbalance=0.1,
            total_cost=9.0,
            events_processed=3,
        )
        assert record.metric("makespan") == 2.0
        assert record.metric("total_cost") == 9.0
        with pytest.raises(ValueError, match="unknown metric"):
            record.metric("latency")

    def test_factory_name_mismatch_detected(self):
        with pytest.raises(RuntimeError, match="produced scheduler"):
            run_sweep(
                scenario_factory=factory,
                scheduler_factories={"mislabeled": RoundRobinScheduler},
                vm_counts=[4],
                num_cloudlets=5,
                engine="fast",
            )

    def test_progress_callback_called(self):
        lines = []
        run_sweep(
            scenario_factory=factory,
            scheduler_factories={"basetest": RoundRobinScheduler},
            vm_counts=[4],
            num_cloudlets=5,
            engine="fast",
            progress=lines.append,
        )
        assert len(lines) == 1
        assert "basetest" in lines[0]


def _strip_wall_clock(record: SweepRecord) -> dict:
    row = record.__dict__.copy()
    row.pop("scheduling_time")  # wall clock, never bit-identical
    return row


class TestParallelSweep:
    """workers=N must reproduce the serial grid exactly (modulo wall clock)."""

    @pytest.fixture(scope="class")
    def sweep_kwargs(self):
        definition = get_experiment("fig6a")
        return dict(
            scenario_factory=definition.scenario_factory(),
            scheduler_factories={
                "basetest": SchedulerFactory("basetest"),
                "antcolony": SchedulerFactory(
                    "antcolony", (("max_iterations", 2), ("num_ants", 4))
                ),
            },
            vm_counts=(4, 8),
            num_cloudlets=24,
            seeds=(0, 1),
            engine="des",
        )

    def test_workers_match_serial_bit_for_bit(self, sweep_kwargs):
        serial = run_sweep(**sweep_kwargs)
        parallel = run_sweep(**sweep_kwargs, workers=2)
        assert len(serial) == len(parallel) == 8
        assert [_strip_wall_clock(r) for r in serial] == [
            _strip_wall_clock(r) for r in parallel
        ]

    def test_workers_one_takes_serial_path(self, sweep_kwargs):
        serial = run_sweep(**sweep_kwargs)
        same = run_sweep(**sweep_kwargs, workers=1)
        assert [_strip_wall_clock(r) for r in serial] == [
            _strip_wall_clock(r) for r in same
        ]

    def test_progress_runs_in_parent_in_grid_order(self, sweep_kwargs):
        lines: list[str] = []
        run_sweep(**sweep_kwargs, workers=2, progress=lines.append)
        assert len(lines) == 8
        # Submission-order consumption: vms=4 rows precede vms=8 rows.
        assert [("vms=4" in line) for line in lines] == [True] * 4 + [False] * 4

    def test_factories_are_picklable(self):
        for obj in (
            ScenarioFamily("heterogeneous"),
            SchedulerFactory("antcolony", (("num_ants", 4),)),
        ):
            clone = pickle.loads(pickle.dumps(obj))
            assert clone == obj

    def test_scenario_family_builds_named_scenarios(self):
        spec = ScenarioFamily("homogeneous")(4, 10, 0)
        assert spec.num_vms == 4
        with pytest.raises(ValueError, match="scenario kind"):
            ScenarioFamily("quantum")(4, 10, 0)

    def test_scheduler_factory_applies_kwargs(self):
        scheduler = SchedulerFactory(
            "antcolony", (("max_iterations", 3), ("num_ants", 7))
        )()
        assert scheduler.num_ants == 7
        assert scheduler.max_iterations == 3
