"""Sweep runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import SweepRecord, run_point, run_sweep
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.random_assign import RandomScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


def factory(num_vms, num_cloudlets, seed):
    return heterogeneous_scenario(num_vms, num_cloudlets, num_datacenters=2, seed=seed)


class TestRunPoint:
    def test_des_engine(self, small_hetero):
        result = run_point(small_hetero, RoundRobinScheduler(), seed=0, engine="des")
        assert result.events_processed > 0

    def test_fast_engine(self, small_hetero):
        result = run_point(small_hetero, RoundRobinScheduler(), seed=0, engine="fast")
        assert result.events_processed == 0
        assert result.info["engine"] == "fast"

    def test_unknown_engine(self, small_hetero):
        with pytest.raises(ValueError, match="engine"):
            run_point(small_hetero, RoundRobinScheduler(), seed=0, engine="warp")


class TestRunSweep:
    def test_grid_size(self):
        records = run_sweep(
            scenario_factory=factory,
            scheduler_factories={
                "basetest": RoundRobinScheduler,
                "random": RandomScheduler,
            },
            vm_counts=[4, 8],
            num_cloudlets=20,
            seeds=[0, 1],
            engine="fast",
        )
        assert len(records) == 2 * 2 * 2
        assert {r.scheduler for r in records} == {"basetest", "random"}
        assert {r.num_vms for r in records} == {4, 8}
        assert {r.seed for r in records} == {0, 1}

    def test_records_have_metrics(self):
        records = run_sweep(
            scenario_factory=factory,
            scheduler_factories={"basetest": RoundRobinScheduler},
            vm_counts=[4],
            num_cloudlets=12,
            engine="des",
        )
        r = records[0]
        assert r.makespan > 0
        assert r.scheduling_time >= 0
        assert r.total_cost > 0
        assert r.num_cloudlets == 12

    def test_metric_lookup(self):
        record = SweepRecord(
            scheduler="x",
            num_vms=1,
            num_cloudlets=1,
            seed=0,
            scheduling_time=0.5,
            makespan=2.0,
            time_imbalance=0.1,
            total_cost=9.0,
            events_processed=3,
        )
        assert record.metric("makespan") == 2.0
        assert record.metric("total_cost") == 9.0
        with pytest.raises(ValueError, match="unknown metric"):
            record.metric("latency")

    def test_factory_name_mismatch_detected(self):
        with pytest.raises(RuntimeError, match="produced scheduler"):
            run_sweep(
                scenario_factory=factory,
                scheduler_factories={"mislabeled": RoundRobinScheduler},
                vm_counts=[4],
                num_cloudlets=5,
                engine="fast",
            )

    def test_progress_callback_called(self):
        lines = []
        run_sweep(
            scenario_factory=factory,
            scheduler_factories={"basetest": RoundRobinScheduler},
            vm_counts=[4],
            num_cloudlets=5,
            engine="fast",
            progress=lines.append,
        )
        assert len(lines) == 1
        assert "basetest" in lines[0]
