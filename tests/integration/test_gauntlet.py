"""The gauntlet driver itself: deterministic reruns and blocking gates.

Runs ``tools/gauntlet.py``'s harness in-process at a tiny scale — the
full smoke-scale record lives in ``BENCH_gauntlet.json`` and is diffed
by the ``gauntlet-smoke`` CI job; here we pin the driver's contracts:

* two runs of the same config are **bit-identical** (every decision
  hash and makespan equal — the acceptance criterion for trusting a
  hash drift as a real regression, not harness noise);
* :func:`diff_records` passes on identity and fails loudly on decision
  drift, missing/new rows, throughput collapse, and RSS growth.
"""

from __future__ import annotations

import copy
import sys
from pathlib import Path

import pytest

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))

from gauntlet import (  # noqa: E402
    DEFAULT_CONFIG,
    GAUNTLET_KWARGS,
    diff_records,
    run_gauntlet,
)
from repro.schedulers import SCHEDULER_REGISTRY  # noqa: E402
from repro.schedulers.streaming import STREAMING_SCHEDULERS  # noqa: E402

TINY_CONFIG = {
    "homog": {"num_vms": 4, "num_cloudlets": 12, "seed": 11},
    "hetero": {"num_vms": 4, "num_cloudlets": 12, "seed": 11},
    "online": {"num_vms": 4, "num_cloudlets": 10, "seed": 5, "rate": 2.0},
    "faulty": {"num_vms": 4, "num_cloudlets": 12, "seed": 23},
    "stream": {
        "num_vms": 4,
        "num_cloudlets": 2000,
        "seed": 7,
        "chunk_size": 512,
        "rounds": 1,
    },
}


@pytest.fixture(scope="module")
def record():
    return run_gauntlet(copy.deepcopy(TINY_CONFIG))


def test_every_registry_scheduler_covered(record):
    per_family = {}
    for row in record["rows"]:
        per_family.setdefault(row["family"], set()).add(row["scheduler"])
    for family in ("homog", "hetero", "online", "faulty"):
        assert per_family[family] == set(SCHEDULER_REGISTRY)
    assert per_family["stream"] == set(STREAMING_SCHEDULERS)
    assert set(GAUNTLET_KWARGS) <= set(SCHEDULER_REGISTRY)


def test_rerun_is_bit_identical(record):
    again = run_gauntlet(copy.deepcopy(TINY_CONFIG))
    stable = [
        {k: v for k, v in row.items() if k in ("family", "scheduler", "decision_sha256", "makespan")}
        for row in record["rows"]
    ]
    stable_again = [
        {k: v for k, v in row.items() if k in ("family", "scheduler", "decision_sha256", "makespan")}
        for row in again["rows"]
    ]
    assert stable == stable_again
    # Decision/metric gates must pass on identity; timing gates are
    # meaningless at this tiny scale, so open them wide.
    assert not diff_records(record, again, throughput_tolerance=1.0, rss_tolerance=10.0)


def test_diff_fails_on_decision_drift(record):
    tampered = copy.deepcopy(record)
    tampered["rows"][0]["decision_sha256"] = "0" * 64
    failures = diff_records(tampered, record)
    assert any("decision hash drifted" in f for f in failures)


def test_diff_fails_on_missing_and_new_rows(record):
    shrunk = copy.deepcopy(record)
    dropped = shrunk["rows"].pop(0)
    failures = diff_records(record, shrunk)
    assert any(
        "row missing" in f and dropped["scheduler"] in f for f in failures
    )
    failures = diff_records(shrunk, record)
    assert any("not in the committed record" in f for f in failures)


def test_diff_fails_on_throughput_and_rss_regressions(record):
    slow = copy.deepcopy(record)
    for row in slow["rows"]:
        if row["family"] == "stream" and row["scheduler"] != "basetest":
            row["relative_throughput"] *= 0.5
    failures = diff_records(record, slow)
    assert any("relative throughput" in f for f in failures)

    bloated = copy.deepcopy(record)
    bloated["peak_rss_mb"] = record["peak_rss_mb"] * 1.5
    failures = diff_records(record, bloated)
    assert any("peak RSS" in f for f in failures)


def test_diff_fails_on_version_drift(record):
    old = copy.deepcopy(record)
    old["version"] = 0
    failures = diff_records(old, record)
    assert failures and "re-record" in failures[0]
