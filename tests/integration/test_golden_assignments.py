"""Golden-seed assignment pins for the metaheuristic schedulers.

These strings were captured from the pre-``repro.optim`` implementations
(one digit per cloudlet: its assigned VM index).  They pin the *decisions*,
not just the metrics, so any change to RNG draw order or float arithmetic
in the ported inner loops shows up immediately.

If an intentional algorithmic change shifts these, regenerate the pins and
document the before/after metrics in CHANGES.md.
"""

from __future__ import annotations

import pytest

from repro.schedulers import make_scheduler
from repro.schedulers.aco import AntColonyScheduler
from repro.schedulers.base import SchedulingContext
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario

# Light configs keep each cell fast while still exercising multiple
# iterations of every inner loop.
LIGHT_KWARGS = {
    "antcolony": {"num_ants": 5, "max_iterations": 2},
    "pso": {"num_particles": 6, "max_iterations": 5},
    "ga": {"population_size": 8, "generations": 5},
    "annealing": {"iterations": 500},
    "hybrid": {},
    "gsa": {"num_agents": 6, "max_iterations": 5},
    "psogsa": {"num_particles": 6, "max_iterations": 5},
    "cuckoo-sos": {"ecosystem_size": 6, "max_iterations": 4},
}

GOLDEN_ASSIGNMENTS = {
    ("hetero", "annealing", 7): "41669466376313483616912505673039074143246013260942794742698463545287342165480145",
    ("hetero", "annealing", 123): "62414565499793106781611342676604234761840154495203969205278847978567897947459771",
    ("hetero", "antcolony", 7): "47569663633437566567232043937466134944370579523657460506109959569936445534935305",
    ("hetero", "antcolony", 123): "63674524459436143657195693730475663668251305233376369943565304065377549740456450",
    ("hetero", "cuckoo-sos", 7): "29023649767479248693365472565861916036990552160540230474613018907991552571875954",
    ("hetero", "cuckoo-sos", 123): "06673641566210566625009990697843893171755935428406792494907167097916595049839459",
    ("hetero", "ga", 7): "77830975655770718688195557995448907190063776017725795523964318235363037515862525",
    ("hetero", "ga", 123): "76873994235362394023011844943668163708794663956520337637946260540148454121817263",
    ("hetero", "gsa", 7): "94245454235037246191278632360174214835935655388763630355812881067331328266037640",
    ("hetero", "gsa", 123): "10275519010866413449718270756705751786327755179735934673297773638711377333285604",
    ("hetero", "hybrid", 7): "05149312433395643753653635175660349977473489253709577071950301395657067205466656",
    ("hetero", "hybrid", 123): "96999643595649067091546256369416459306364458566143081302173201694354762440710325",
    ("hetero", "pso", 7): "57530053908800915988614556925474137100063776017728133224604518733676451435866725",
    ("hetero", "pso", 123): "23191138963644096071257706475433731262369895691132301795857890641635719989621216",
    ("hetero", "psogsa", 7): "76056663332034446181148833543173436625836655445584636446506983747400309165039860",
    ("hetero", "psogsa", 123): "10566549333726618559606060755935651604479673099715933643254173539651474144885634",
    ("homog", "annealing", 7): "0123456701234567012345670123456701234567",
    ("homog", "annealing", 123): "0123456701234567012345670123456701234567",
    ("homog", "antcolony", 7): "7023473631462520405274260555776347147052",
    ("homog", "antcolony", 123): "7503406216264421000362502147556451253115",
    ("homog", "cuckoo-sos", 7): "6605650436414447537055162704762107311270",
    ("homog", "cuckoo-sos", 123): "1102173642114024373406337603751452245200",
    ("homog", "ga", 7): "0123456701234567012345670123456701234567",
    ("homog", "ga", 123): "0123456701234567012345670123456701234567",
    ("homog", "gsa", 7): "2214456750616473702376250661223063314275",
    ("homog", "gsa", 123): "2633245550254315143676542431527106732406",
    ("homog", "hybrid", 7): "0123456701234567012345670123456701234567",
    ("homog", "hybrid", 123): "0123456701234567012345670123456701234567",
    ("homog", "pso", 7): "0276501424413307477165206215742021734660",
    ("homog", "pso", 123): "2104271302113024373476277603377452245604",
    ("homog", "psogsa", 7): "2104446750616473702376250761223163314273",
    ("homog", "psogsa", 123): "2613245550254305043776542431627106732406",
}

# ACO variant coverage: every construction/pheromone/tabu code path.
ACO_VARIANT_KWARGS = {
    "aco-vm": dict(num_ants=5, max_iterations=2, pheromone="vm"),
    "aco-tabu": dict(num_ants=5, max_iterations=2, tabu="pass"),
    "aco-load": dict(num_ants=5, max_iterations=2, load_aware=True),
    "aco-gumbel": dict(num_ants=5, max_iterations=2, tabu="pass", pheromone="vm"),
    "aco-patience": dict(num_ants=5, max_iterations=6, patience=2),
}

GOLDEN_ACO_VARIANTS = {
    ("hetero", "aco-vm", 11): "54421693906556359530757512975640325496544696375620331962334974506566895644659359",
    ("hetero", "aco-tabu", 11): "48124888283351294966917387020779632155443075754044201323611520356008669577168999",
    ("hetero", "aco-load", 11): "41378773057678147234691161474577320453696093998667360375440229599317316628335563",
    ("hetero", "aco-gumbel", 11): "48124888283351294966917387020779632155443075754044201323611520356008669577168999",
    ("hetero", "aco-patience", 11): "74445241038401956374077593555746467504483223857934993806907042196436936767604316",
    ("homog", "aco-vm", 11): "1270047237103655403576460166270451517106",
    ("homog", "aco-tabu", 11): "2656100420740206416343375456231723551177",
    ("homog", "aco-load", 11): "1270047237203655414576460266270451517206",
    ("homog", "aco-gumbel", 11): "5213674040136752623450172056734123764150",
    ("homog", "aco-patience", 11): "7213064303531355461702752127002041156356",
}


@pytest.fixture(scope="module")
def cells():
    return {
        "hetero": heterogeneous_scenario(10, 80, seed=123),
        "homog": homogeneous_scenario(8, 40, seed=7),
    }


@pytest.fixture(params=[False, True], ids=["telemetry-off", "telemetry-on"])
def telemetry_state(request):
    """Run the pinned decisions with telemetry both disabled and enabled.

    The observability layer's hard contract: recording spans/counters must
    never change an assignment — instrumentation only observes, it never
    draws randomness or reorders arithmetic.
    """
    from repro import obs

    with obs.enabled(request.param):
        yield request.param


def _digits(assignment) -> str:
    return "".join(str(v) for v in assignment)


@pytest.mark.parametrize(
    ("cell", "name", "seed"),
    sorted(GOLDEN_ASSIGNMENTS),
    ids=[f"{c}-{n}-{s}" for c, n, s in sorted(GOLDEN_ASSIGNMENTS)],
)
def test_golden_assignment_unchanged(cells, telemetry_state, cell, name, seed):
    context = SchedulingContext.from_scenario(cells[cell], seed=seed)
    scheduler = make_scheduler(name, **LIGHT_KWARGS[name])
    result = scheduler.schedule_checked(context)
    assert _digits(result.assignment) == GOLDEN_ASSIGNMENTS[(cell, name, seed)]


@pytest.mark.parametrize(
    ("cell", "variant", "seed"),
    sorted(GOLDEN_ACO_VARIANTS),
    ids=[f"{c}-{v}-{s}" for c, v, s in sorted(GOLDEN_ACO_VARIANTS)],
)
def test_golden_aco_variant_unchanged(cells, telemetry_state, cell, variant, seed):
    context = SchedulingContext.from_scenario(cells[cell], seed=seed)
    scheduler = AntColonyScheduler(**ACO_VARIANT_KWARGS[variant])
    result = scheduler.schedule_checked(context)
    assert _digits(result.assignment) == GOLDEN_ACO_VARIANTS[(cell, variant, seed)]


@pytest.mark.parametrize("name", sorted(LIGHT_KWARGS))
def test_convergence_trace_monotone_for_elitist_optimizers(cells, name):
    """Best-so-far fitness must never increase under elitist incumbents."""
    context = SchedulingContext.from_scenario(cells["hetero"], seed=7)
    result = make_scheduler(name, **LIGHT_KWARGS[name]).schedule_checked(context)
    trace = result.info.get("convergence")
    assert trace is not None, f"{name} published no convergence trace"
    fits = trace["best_fitness"]
    assert len(fits) >= 2
    assert all(b <= a for a, b in zip(fits, fits[1:])), fits
    assert trace["evaluations"] == sorted(trace["evaluations"])
