"""Golden regression values.

Every scheduler's metric triple (makespan, time imbalance, total cost) on a
fixed (scenario, seed) cell, pinned exactly.  The whole stack is
deterministic given seeds, so any diff here means an *intentional*
algorithm change — update the constants together with EXPERIMENTS.md when
that happens — or an accidental regression.

Scheduling wall-clock time is excluded (machine-dependent); values are
compared at 1e-9 relative tolerance to allow cross-platform float noise.
"""

from __future__ import annotations

import pytest

from repro.cloud.fast import FastSimulation
from repro.schedulers import SCHEDULER_REGISTRY, make_scheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario

LIGHT_KWARGS = {
    "antcolony": {"num_ants": 5, "max_iterations": 2},
    "pso": {"num_particles": 6, "max_iterations": 5},
    "ga": {"population_size": 8, "generations": 5},
    "annealing": {"iterations": 500},
    "gsa": {"num_agents": 6, "max_iterations": 5},
    "psogsa": {"num_particles": 6, "max_iterations": 5},
    "cuckoo-sos": {"ecosystem_size": 6, "max_iterations": 4},
}

#: (makespan, time_imbalance, total_cost) on heterogeneous(10, 80, seed=123).
HETERO_GOLDEN = {
    "annealing": (52.15350448252469, 3.742667958332733, 4923.243207509197),
    "antcolony": (38.01593765452112, 3.299289293698334, 4796.113998031495),
    "basetest": (103.44418118571517, 4.9683915979078535, 5109.045361441469),
    "cuckoo-sos": (54.84432371158597, 3.7027167549792117, 4889.162757965149),
    "deadline-edf": (35.701117770885155, 4.644589136077443, 4816.779998154683),
    "ga": (61.27707944960118, 4.680091883497093, 4932.6466858354),
    "greedy-mct": (35.2709971763677, 2.102770507457777, 4769.107790147569),
    "gsa": (75.98490736009754, 4.211798715749159, 5178.55421228116),
    "honeybee": (76.76817001566086, 5.815640807184024, 4636.7188195093195),
    "hybrid": (41.880845162155275, 5.679948893478283, 4822.731066670206),
    "maxmin": (32.47613958963537, 4.262682007047077, 4860.379679393935),
    "met": (205.00492592702005, 1.9598353990306092, 5164.546449968171),
    "minmin": (35.701117770885155, 4.644589136077443, 4816.779998154683),
    "olb": (40.74789455928223, 6.529358371165535, 4883.333984213054),
    "priority-cost": (41.50944846605594, 1.861998595030674, 4750.785719927772),
    "pso": (73.38786098799302, 3.93268332402028, 5069.02654335025),
    "psogsa": (41.73832584871123, 5.019606094739707, 4865.599819215504),
    "random": (98.24111293626889, 4.117580357117303, 5098.287576960826),
    "rbs": (107.54796852181991, 4.835339169658334, 5151.058261666766),
}

#: basetest on homogeneous(8, 50, seed=123) — exact rationals.
HOMOG_BASETEST = (1.75, 0.0, 1567.4999999999998)


class TestGoldenValues:
    def test_every_scheduler_has_a_golden_entry(self):
        assert set(HETERO_GOLDEN) == set(SCHEDULER_REGISTRY)

    @pytest.mark.parametrize("name", sorted(HETERO_GOLDEN))
    def test_heterogeneous_metrics_pinned(self, name):
        scenario = heterogeneous_scenario(10, 80, seed=123)
        scheduler = make_scheduler(name, **LIGHT_KWARGS.get(name, {}))
        result = FastSimulation(scenario, scheduler, seed=123).run()
        makespan, imbalance, cost = HETERO_GOLDEN[name]
        assert result.makespan == pytest.approx(makespan, rel=1e-9)
        assert result.time_imbalance == pytest.approx(imbalance, rel=1e-9)
        assert result.total_cost == pytest.approx(cost, rel=1e-9)

    def test_homogeneous_basetest_pinned(self):
        scenario = homogeneous_scenario(8, 50, seed=123)
        result = FastSimulation(scenario, make_scheduler("basetest"), seed=123).run()
        assert result.makespan == pytest.approx(HOMOG_BASETEST[0], rel=1e-12)
        assert result.time_imbalance == pytest.approx(HOMOG_BASETEST[1], abs=1e-12)
        assert result.total_cost == pytest.approx(HOMOG_BASETEST[2], rel=1e-12)
