"""Small-scale end-to-end reproductions of the paper's qualitative claims.

These run the full pipeline (generator → scheduler → DES/fast engine →
metrics) at sizes small enough for CI but large enough for the orderings to
be stable.  The full sweeps live in ``benchmarks/`` and
``python -m repro.experiments``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.fast import FastSimulation
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


@pytest.fixture(scope="module")
def hetero_results():
    """One mid-sweep heterogeneous point (paper regime: cloudlets >> VMs)."""
    scenario = heterogeneous_scenario(num_vms=40, num_cloudlets=400, seed=0)
    schedulers = {
        "antcolony": AntColonyScheduler(num_ants=20, max_iterations=3),
        "basetest": RoundRobinScheduler(),
        "honeybee": HoneyBeeScheduler(),
        "rbs": RandomBiasedSamplingScheduler(),
    }
    return {
        name: CloudSimulation(scenario, sched, seed=0).run()
        for name, sched in schedulers.items()
    }


class TestHeterogeneousShapes:
    def test_fig6a_aco_has_best_makespan(self, hetero_results):
        makespans = {k: r.makespan for k, r in hetero_results.items()}
        assert makespans["antcolony"] == min(makespans.values())

    def test_fig6a_hbo_beats_basetest(self, hetero_results):
        assert hetero_results["honeybee"].makespan < hetero_results["basetest"].makespan

    def test_fig6b_scheduling_time_ordering(self, hetero_results):
        times = {k: r.scheduling_time for k, r in hetero_results.items()}
        assert times["basetest"] < times["rbs"] < times["honeybee"] < times["antcolony"]

    def test_fig6c_aco_imbalance_above_spreading_policies(self, hetero_results):
        imb = {k: r.time_imbalance for k, r in hetero_results.items()}
        assert imb["antcolony"] > imb["basetest"]
        assert imb["antcolony"] > imb["rbs"]

    def test_fig6d_hbo_has_lowest_cost(self, hetero_results):
        costs = {k: r.total_cost for k, r in hetero_results.items()}
        assert costs["honeybee"] == min(costs.values())

    def test_fig6d_non_hbo_costs_clustered(self, hetero_results):
        costs = [
            r.total_cost for k, r in hetero_results.items() if k != "honeybee"
        ]
        assert max(costs) / min(costs) < 1.15


class TestHomogeneousShapes:
    @pytest.fixture(scope="class")
    def homog_results(self):
        scenario = homogeneous_scenario(num_vms=25, num_cloudlets=500, seed=0)
        schedulers = {
            "antcolony": AntColonyScheduler(num_ants=5, max_iterations=2, tabu="pass"),
            "basetest": RoundRobinScheduler(),
            "honeybee": HoneyBeeScheduler(),
            "rbs": RandomBiasedSamplingScheduler(),
        }
        return {
            name: FastSimulation(scenario, sched, seed=0).run()
            for name, sched in schedulers.items()
        }

    def test_fig4_all_converge_to_base_test(self, homog_results):
        base = homog_results["basetest"].makespan
        # 500 cloudlets / 25 VMs = 20 each x 0.25 s.
        assert base == pytest.approx(5.0)
        for name, result in homog_results.items():
            assert result.makespan <= base * 1.1, name

    def test_fig4_imbalance_zero_in_homogeneous(self, homog_results):
        for result in homog_results.values():
            assert result.time_imbalance == pytest.approx(0.0, abs=1e-9)

    def test_fig5_base_test_schedules_fastest(self, homog_results):
        base = homog_results["basetest"].scheduling_time
        for name, result in homog_results.items():
            if name != "basetest":
                assert result.scheduling_time > base, name

    def test_makespan_decreases_with_fleet_size(self):
        mks = []
        for num_vms in (10, 20, 40):
            scenario = homogeneous_scenario(num_vms=num_vms, num_cloudlets=400, seed=0)
            mks.append(
                FastSimulation(scenario, RoundRobinScheduler(), seed=0).run().makespan
            )
        assert mks[0] > mks[1] > mks[2]


class TestCrossEngineConsistency:
    def test_paper_metrics_identical_across_engines(self):
        scenario = heterogeneous_scenario(num_vms=15, num_cloudlets=120, seed=2)
        for sched_factory in (RoundRobinScheduler, HoneyBeeScheduler):
            fast = FastSimulation(scenario, sched_factory(), seed=2).run()
            des = CloudSimulation(scenario, sched_factory(), seed=2).run()
            assert fast.makespan == pytest.approx(des.makespan)
            assert fast.time_imbalance == pytest.approx(des.time_imbalance)
            assert fast.total_cost == pytest.approx(des.total_cost)

    def test_datacenter_cost_accounting_matches_metric(self):
        from repro.cloud.broker import DatacenterBroker  # noqa: F401  (docs)

        scenario = heterogeneous_scenario(num_vms=10, num_cloudlets=80, seed=3)
        sim = CloudSimulation(scenario, RoundRobinScheduler(), seed=3)
        result = sim.run()
        assert result.total_cost == pytest.approx(result.costs.sum())
        assert (result.costs > 0).all()
