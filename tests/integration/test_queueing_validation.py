"""Validate the online DES engine against queueing theory.

With Poisson arrivals and exponentially distributed cloudlet lengths on
identical single-PE space-shared VMs, the simulator realises textbook
queueing systems.  These tests check measured steady-state sojourn times
against the closed forms — a correctness check on the entire stack
(arrival process, broker, datacenter event discipline, FIFO execution).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.queueing import mm1_mean_sojourn, mmc_mean_sojourn
from repro.cloud.online import OnlineCloudSimulation
from repro.schedulers.online import OnlineLeastLoaded, OnlineRandom
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.homogeneous import homogeneous_scenario
from repro.workloads.spec import CloudletSpec

MIPS = 1000.0
MEAN_LENGTH = 1000.0  # -> exponential service, mean 1 s, rate mu = 1
WARMUP_FRACTION = 0.2


def exp_scenario(num_vms: int, num_cloudlets: int, seed: int):
    """Identical VMs; exponential lengths (mean 1 s of service)."""
    base = homogeneous_scenario(num_vms, num_cloudlets, num_datacenters=1, seed=seed)
    rng = np.random.default_rng(seed + 1)
    lengths = np.maximum(rng.exponential(MEAN_LENGTH, size=num_cloudlets), 1.0)
    return dataclasses.replace(
        base,
        cloudlets=tuple(
            CloudletSpec(length=float(ln), file_size=0.0, output_size=0.0)
            for ln in lengths
        ),
    )


def measured_sojourn(result) -> float:
    """Mean flow time after discarding the warm-up prefix."""
    flow = result.finish_times - result.submission_times
    skip = int(len(flow) * WARMUP_FRACTION)
    return float(flow[skip:].mean())


class TestMm1Validation:
    @pytest.mark.parametrize("lam,tol", [(0.4, 0.15), (0.6, 0.2)])
    def test_single_vm_matches_mm1(self, lam, tol):
        scenario = exp_scenario(num_vms=1, num_cloudlets=4000, seed=7)
        result = OnlineCloudSimulation(
            scenario,
            OnlineLeastLoaded(),
            arrivals=PoissonArrivals(rate=lam),
            seed=7,
        ).run()
        expected = mm1_mean_sojourn(lam, 1.0)
        assert measured_sojourn(result) == pytest.approx(expected, rel=tol)

    def test_higher_load_longer_sojourn(self):
        sojourns = []
        for lam in (0.3, 0.6, 0.8):
            scenario = exp_scenario(num_vms=1, num_cloudlets=3000, seed=3)
            result = OnlineCloudSimulation(
                scenario, OnlineLeastLoaded(), arrivals=PoissonArrivals(rate=lam), seed=3
            ).run()
            sojourns.append(measured_sojourn(result))
        assert sojourns[0] < sojourns[1] < sojourns[2]


class TestRoutingBounds:
    def test_jsq_bracketed_by_mmc_and_random_routing(self):
        """Least-loaded (≈ join-shortest-queue) routing cannot beat the
        central-queue M/M/c bound and must beat random routing (which makes
        each server an independent M/M/1 at load rho)."""
        c, lam = 4, 2.8  # rho = 0.7
        scenario = exp_scenario(num_vms=c, num_cloudlets=6000, seed=11)
        jsq = OnlineCloudSimulation(
            scenario, OnlineLeastLoaded(), arrivals=PoissonArrivals(rate=lam), seed=11
        ).run()
        rnd = OnlineCloudSimulation(
            scenario, OnlineRandom(), arrivals=PoissonArrivals(rate=lam), seed=11
        ).run()
        w_jsq = measured_sojourn(jsq)
        w_rnd = measured_sojourn(rnd)
        w_mmc = mmc_mean_sojourn(lam, 1.0, c)
        w_random_theory = mm1_mean_sojourn(lam / c, 1.0)
        # Ordering: central M/M/c <= JSQ < random routing ≈ per-server M/M/1.
        assert w_mmc <= w_jsq * 1.1
        assert w_jsq < w_rnd
        assert w_rnd == pytest.approx(w_random_theory, rel=0.3)


class TestProcessorSharingValidation:
    def test_mm1_ps_same_mean_sojourn_as_fcfs(self):
        """M/M/1 with egalitarian processor sharing has the same mean
        sojourn 1/(mu - lambda) as FCFS — a classic insensitivity result,
        checked here against the time-shared execution engine."""
        lam = 0.5
        scenario = exp_scenario(num_vms=1, num_cloudlets=4000, seed=19)
        result = OnlineCloudSimulation(
            scenario,
            OnlineLeastLoaded(),
            arrivals=PoissonArrivals(rate=lam),
            seed=19,
            execution_model="time-shared",
        ).run()
        expected = mm1_mean_sojourn(lam, 1.0)
        assert measured_sojourn(result) == pytest.approx(expected, rel=0.2)

    def test_ps_favours_short_tasks_over_fcfs(self):
        """Under processor sharing, short tasks never wait behind long ones,
        so the p50 sojourn must be lower than under FCFS at equal load."""
        import numpy as np

        lam = 0.7
        scenario = exp_scenario(num_vms=1, num_cloudlets=3000, seed=23)
        fcfs = OnlineCloudSimulation(
            scenario, OnlineLeastLoaded(), arrivals=PoissonArrivals(rate=lam), seed=23
        ).run()
        ps = OnlineCloudSimulation(
            scenario,
            OnlineLeastLoaded(),
            arrivals=PoissonArrivals(rate=lam),
            seed=23,
            execution_model="time-shared",
        ).run()
        p50_fcfs = np.percentile(fcfs.finish_times - fcfs.submission_times, 50)
        p50_ps = np.percentile(ps.finish_times - ps.submission_times, 50)
        assert p50_ps < p50_fcfs
