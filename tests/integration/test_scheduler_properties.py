"""Metamorphic and cross-cutting scheduler properties.

Checks that must hold for *every* registered batch scheduler, plus
metamorphic relations (how outputs must transform when inputs are scaled)
that catch unit mistakes no example-based test would.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cloud.fast import FastSimulation
from repro.schedulers import SCHEDULER_REGISTRY, make_scheduler
from repro.schedulers.base import SchedulingContext
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.spec import CloudletSpec

LIGHT_KWARGS = {
    "antcolony": {"num_ants": 4, "max_iterations": 2},
    "pso": {"num_particles": 6, "max_iterations": 5},
    "ga": {"population_size": 8, "generations": 5},
}

ALL_NAMES = sorted(SCHEDULER_REGISTRY)


def light(name):
    return make_scheduler(name, **LIGHT_KWARGS.get(name, {}))


class TestEverySchedulerUniversalProperties:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic_given_seed(self, name, small_hetero):
        a = light(name).schedule_checked(
            SchedulingContext.from_scenario(small_hetero, seed=3)
        )
        b = light(name).schedule_checked(
            SchedulingContext.from_scenario(small_hetero, seed=3)
        )
        np.testing.assert_array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_handles_single_cloudlet(self, name):
        scenario = heterogeneous_scenario(4, 1, num_datacenters=2, seed=0)
        result = light(name).schedule_checked(
            SchedulingContext.from_scenario(scenario, seed=0)
        )
        assert result.assignment.shape == (1,)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_handles_single_vm(self, name):
        scenario = heterogeneous_scenario(1, 8, num_datacenters=1, seed=0)
        result = light(name).schedule_checked(
            SchedulingContext.from_scenario(scenario, seed=0)
        )
        np.testing.assert_array_equal(result.assignment, np.zeros(8, dtype=np.int64))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_end_to_end_through_fast_engine(self, name, small_hetero):
        result = FastSimulation(small_hetero, light(name), seed=0).run()
        assert result.makespan > 0
        assert np.isfinite(result.total_cost)


class TestMetamorphicRelations:
    def test_scaling_lengths_scales_makespan_linearly(self):
        """Doubling every cloudlet length must exactly double the makespan
        for schedulers whose decisions are scale-invariant."""
        base = heterogeneous_scenario(8, 50, seed=5)
        doubled = dataclasses.replace(
            base,
            cloudlets=tuple(
                dataclasses.replace(c, length=c.length * 2) for c in base.cloudlets
            ),
        )
        for name in ("basetest", "greedy-mct", "maxmin", "minmin"):
            r1 = FastSimulation(base, light(name), seed=0).run()
            r2 = FastSimulation(doubled, light(name), seed=0).run()
            assert r2.makespan == pytest.approx(2 * r1.makespan), name
            np.testing.assert_array_equal(r1.assignment, r2.assignment)

    def test_scaling_mips_inverse_scales_makespan(self):
        base = heterogeneous_scenario(8, 50, seed=5)
        faster = dataclasses.replace(
            base,
            vms=tuple(dataclasses.replace(v, mips=v.mips * 2) for v in base.vms),
        )
        r1 = FastSimulation(base, light("greedy-mct"), seed=0).run()
        r2 = FastSimulation(faster, light("greedy-mct"), seed=0).run()
        assert r2.makespan == pytest.approx(r1.makespan / 2)

    def test_permuting_identical_vms_is_irrelevant_to_makespan(self):
        """On a fleet of identical VMs every scheduler's makespan must be
        invariant under VM relabelling (loads are exchangeable)."""
        base = heterogeneous_scenario(6, 60, seed=7)
        uniform = dataclasses.replace(
            base,
            vms=tuple(dataclasses.replace(v, mips=1500.0) for v in base.vms),
        )
        for name in ("basetest", "honeybee", "rbs"):
            result = FastSimulation(uniform, light(name), seed=0).run()
            counts = np.bincount(result.assignment, minlength=6)
            work = np.zeros(6)
            np.add.at(work, result.assignment, uniform.arrays().cloudlet_length)
            assert result.makespan == pytest.approx(work.max() / 1500.0), name

    def test_adding_dominated_vm_never_helps_greedy(self):
        """Appending a strictly slower VM cannot worsen greedy's makespan
        (it can simply ignore it)."""
        base = heterogeneous_scenario(6, 60, seed=9)
        slower = dataclasses.replace(
            base,
            vms=base.vms + (dataclasses.replace(base.vms[0], mips=1.0),),
            vm_datacenter=base.vm_datacenter + (0,),
        )
        r_base = FastSimulation(base, light("greedy-mct"), seed=0).run()
        r_more = FastSimulation(slower, light("greedy-mct"), seed=0).run()
        assert r_more.makespan <= r_base.makespan + 1e-9

    def test_duplicate_cloudlet_batch_doubles_total_cost_for_round_robin(self):
        base = heterogeneous_scenario(4, 40, seed=3)
        doubled = dataclasses.replace(
            base, cloudlets=base.cloudlets + base.cloudlets
        )
        r1 = FastSimulation(base, light("basetest"), seed=0).run()
        r2 = FastSimulation(doubled, light("basetest"), seed=0).run()
        # Same cyclic pattern repeated: each cloudlet lands on the same VM
        # type distribution, so cost exactly doubles.
        assert r2.total_cost == pytest.approx(2 * r1.total_cost)


class TestExtremeBatchShapes:
    def test_one_giant_among_dwarfs(self):
        cloudlets = tuple(
            CloudletSpec(length=100.0) for _ in range(40)
        ) + (CloudletSpec(length=1e6),)
        base = heterogeneous_scenario(8, 41, seed=2)
        scenario = dataclasses.replace(base, cloudlets=cloudlets)
        greedy = FastSimulation(scenario, light("greedy-mct"), seed=0).run()
        arr = scenario.arrays()
        # Greedy must put the giant on the fastest VM.
        giant_vm = greedy.assignment[-1]
        assert arr.vm_mips[giant_vm] == arr.vm_mips.max()
        # Makespan is dominated by the giant.
        assert greedy.makespan == pytest.approx(1e6 / arr.vm_mips.max(), rel=0.01)

    def test_more_vms_than_cloudlets_all_schedulers(self):
        scenario = heterogeneous_scenario(30, 5, num_datacenters=3, seed=1)
        for name in ALL_NAMES:
            result = FastSimulation(scenario, light(name), seed=0).run()
            assert result.makespan > 0, name
