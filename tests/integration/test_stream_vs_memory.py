"""Differential test: streaming path vs the in-memory analytic path.

Collect-mode :class:`~repro.cloud.fast.StreamingSimulation` must produce
a byte-equal :class:`~repro.cloud.simulation.SimulationResult` for the
paper's four schedulers on the homogeneous family (whose execution times
``250 / 1000`` are exact), with telemetry off and on — the pinned proof
that chunked execution changes *where* the work happens, never *what* it
computes.  Bounded mode must agree with collect mode on everything both
report, and the in-memory fallback must keep metaheuristics usable on
the streaming entry points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cloud.fast import FastSimulation, StreamingResult, StreamingSimulation
from repro.experiments.runner import run_point
from repro.schedulers import make_scheduler
from repro.schedulers.streaming import make_streaming_scheduler
from repro.workloads.homogeneous import homogeneous_scenario
from repro.workloads.streaming import ScenarioChunks, homogeneous_stream

#: the four paper schedulers with native streaming implementations.
STREAMED = ("basetest", "greedy-mct", "honeybee", "rbs")
#: per-cloudlet arrays that must round-trip byte-for-byte.
ARRAY_FIELDS = (
    "assignment",
    "submission_times",
    "start_times",
    "finish_times",
    "exec_times",
    "costs",
)
SCALAR_FIELDS = ("makespan", "time_imbalance", "total_cost")

NUM_VMS, NUM_CLOUDLETS, SEED, CHUNK = 10, 257, 3, 64


@pytest.fixture(params=[False, True], ids=["telemetry-off", "telemetry-on"])
def telemetry_state(request):
    with obs.enabled(request.param):
        yield request.param


@pytest.fixture()
def spec():
    return homogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)


@pytest.fixture()
def stream():
    return homogeneous_stream(NUM_VMS, NUM_CLOUDLETS, seed=SEED, chunk_size=CHUNK)


@pytest.mark.parametrize("name", STREAMED)
def test_collect_mode_result_is_byte_equal(telemetry_state, spec, stream, name):
    memory = FastSimulation(spec, make_scheduler(name), seed=SEED).run()
    streamed = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=SEED, collect=True
    ).run()
    assert streamed.scenario_name == memory.scenario_name
    assert streamed.scheduler_name == memory.scheduler_name
    for field in SCALAR_FIELDS:
        assert getattr(streamed, field) == getattr(memory, field), field
    for field in ARRAY_FIELDS:
        a, b = getattr(streamed, field), getattr(memory, field)
        assert a.dtype == b.dtype, field
        assert a.tobytes() == b.tobytes(), field
    # engine provenance legitimately differs; the telemetry/info dict is
    # exempt from byte-equality by design.
    assert streamed.info["engine"] == "stream"
    assert memory.info["engine"] == "fast"
    if telemetry_state:
        assert "telemetry" in streamed.info


@pytest.mark.parametrize("name", STREAMED)
def test_bounded_mode_agrees_with_collect_mode(telemetry_state, stream, name):
    bounded = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=SEED
    ).run()
    collected = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=SEED, collect=True
    ).run()
    assert isinstance(bounded, StreamingResult)
    # Makespan and imbalance are exact here (execution times 250/1000 are
    # dyadic); total_cost folds per-VM instead of summing pairwise over
    # cloudlets, so it may differ by reassociation ulps only.
    assert bounded.makespan == collected.makespan
    assert bounded.time_imbalance == collected.time_imbalance
    assert bounded.total_cost == pytest.approx(collected.total_cost, rel=1e-12)
    assert bounded.num_cloudlets == NUM_CLOUDLETS
    assert bounded.num_chunks == -(-NUM_CLOUDLETS // CHUNK)
    assert bounded.peak_rss_bytes > 0
    # Per-VM finish times must equal each VM's final backlog in collect mode.
    finals = np.zeros(NUM_VMS)
    np.maximum.at(finals, collected.assignment, collected.finish_times)
    occupied = np.isin(np.arange(NUM_VMS), collected.assignment)
    assert np.array_equal(bounded.vm_finish_times[occupied], finals[occupied])
    assert (bounded.vm_finish_times[~occupied] == 0).all()


def test_metaheuristic_falls_back_to_in_memory(telemetry_state, spec, stream):
    memory = FastSimulation(spec, make_scheduler("maxmin"), seed=SEED).run()
    fallback = StreamingSimulation(stream, make_scheduler("maxmin"), seed=SEED).run()
    assert fallback.info["streaming_native"] is False
    assert fallback.scheduler_name == "maxmin"
    assert fallback.makespan == memory.makespan
    assert fallback.time_imbalance == memory.time_imbalance
    assert fallback.total_cost == pytest.approx(memory.total_cost, rel=1e-12)


@pytest.mark.parametrize("name", STREAMED)
def test_run_point_stream_engine_matches_fast_engine(name, spec, stream):
    fast = run_point(spec, make_scheduler(name), seed=SEED, engine="fast")
    streamed = run_point(stream, make_scheduler(name), seed=SEED, engine="stream")
    assert isinstance(streamed, StreamingResult)
    assert streamed.makespan == fast.makespan
    assert streamed.time_imbalance == fast.time_imbalance
    assert streamed.total_cost == pytest.approx(fast.total_cost, rel=1e-12)


def test_multi_pe_fleet_is_rejected():
    spec = homogeneous_scenario(4, 20, seed=0)
    stream = ScenarioChunks.from_spec(spec, chunk_size=8)
    stream = stream.__class__(
        **{
            **{f: getattr(stream, f) for f in stream.__dataclass_fields__},
            "vm_pes": np.full(4, 2, dtype=np.int64),
        }
    )
    with pytest.raises(ValueError, match="single-PE"):
        StreamingSimulation(stream, make_streaming_scheduler("basetest")).run()
