"""Scheduling timer and summary statistics."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.metrics.collector import SchedulingTimer, time_scheduling
from repro.metrics.stats import SummaryStats, confidence_interval, summarize


class TestSchedulingTimer:
    def test_measure_records_samples(self):
        timer = SchedulingTimer()
        with timer.measure():
            time.sleep(0.01)
        with timer.measure():
            pass
        assert timer.count == 2
        assert timer.last >= 0
        assert timer.samples[0] >= 0.01
        assert timer.total == pytest.approx(sum(timer.samples))
        assert timer.mean() == pytest.approx(timer.total / 2)

    def test_measure_records_on_exception(self):
        timer = SchedulingTimer()
        with pytest.raises(RuntimeError):
            with timer.measure():
                raise RuntimeError("boom")
        assert timer.count == 1

    def test_empty_timer_raises(self):
        timer = SchedulingTimer()
        with pytest.raises(ValueError):
            _ = timer.last
        with pytest.raises(ValueError):
            timer.mean()

    def test_time_scheduling_returns_result_and_elapsed(self):
        result, elapsed = time_scheduling(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0


class TestStats:
    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats == SummaryStats(
            n=1, mean=5.0, std=0.0, minimum=5.0, maximum=5.0, ci_halfwidth=0.0
        )
        assert str(stats) == "5"

    def test_summary_fields(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.ci_low < 2.0 < stats.ci_high
        assert "±" in str(stats)

    def test_ci_zero_for_constant_samples(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == 0.0

    def test_ci_matches_t_distribution(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        from scipy import stats as sps

        sem = np.std(samples, ddof=1) / np.sqrt(4)
        expected = sps.t.ppf(0.975, df=3) * sem
        assert confidence_interval(samples) == pytest.approx(expected)

    def test_wider_confidence_wider_interval(self):
        samples = [1.0, 5.0, 2.0, 8.0]
        assert confidence_interval(samples, 0.99) > confidence_interval(samples, 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            confidence_interval([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            confidence_interval(np.zeros((2, 2)))
