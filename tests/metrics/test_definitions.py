"""Metric formulas (paper Eq. 12, Eq. 13, Section VI-C4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.definitions import (
    average_waiting_time,
    makespan,
    processing_cost,
    throughput,
    time_imbalance,
    total_processing_cost,
    vm_load_counts,
    vm_utilization,
)

positive_times = st.lists(
    st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=100
)


class TestMakespan:
    def test_formula(self):
        assert makespan([1.0, 2.0], [5.0, 9.0]) == 8.0

    def test_single_cloudlet(self):
        assert makespan([2.0], [7.0]) == 5.0

    def test_finish_before_start_rejected(self):
        with pytest.raises(ValueError, match="finish"):
            makespan([5.0], [4.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            makespan([1.0], [2.0, 3.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            makespan([], [])

    @given(positive_times)
    def test_nonnegative_property(self, execs):
        starts = np.zeros(len(execs))
        finishes = np.array(execs)
        assert makespan(starts, finishes) >= 0
        assert makespan(starts, finishes) == pytest.approx(max(execs))


class TestTimeImbalance:
    def test_formula(self):
        # (4 - 1) / 2.5
        assert time_imbalance([1.0, 4.0]) == pytest.approx(1.2)

    def test_uniform_times_give_zero(self):
        assert time_imbalance([3.0, 3.0, 3.0]) == 0.0

    def test_single_task_gives_zero(self):
        assert time_imbalance([5.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            time_imbalance([-1.0, 1.0])

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            time_imbalance([0.0, 0.0])

    @given(positive_times)
    def test_invariants(self, times):
        value = time_imbalance(times)
        assert value >= 0
        n = len(times)
        # (max-min)/avg is at most n * (max-min)/ (n*min+... ) <= max/avg <= n
        assert value <= n


class TestProcessingCost:
    def test_componentwise(self):
        costs = processing_cost(
            lengths=[2000.0],
            vm_mips=[1000.0],
            vm_ram=[512.0],
            vm_size=[5000.0],
            file_sizes=[300.0],
            output_sizes=[300.0],
            cost_per_cpu=[3.0],
            cost_per_mem=[0.05],
            cost_per_storage=[0.001],
            cost_per_bw=[0.01],
        )
        assert costs[0] == pytest.approx(6.0 + 25.6 + 5.0 + 6.0)

    def test_total_is_sum(self):
        kwargs = dict(
            lengths=[1000.0, 2000.0],
            vm_mips=[1000.0, 1000.0],
            vm_ram=[0.0, 0.0],
            vm_size=[0.0, 0.0],
            file_sizes=[0.0, 0.0],
            output_sizes=[0.0, 0.0],
            cost_per_cpu=[1.0, 1.0],
            cost_per_mem=[0.0, 0.0],
            cost_per_storage=[0.0, 0.0],
            cost_per_bw=[0.0, 0.0],
        )
        assert total_processing_cost(**kwargs) == pytest.approx(3.0)

    def test_zero_mips_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            processing_cost(
                [1.0], [0.0], [0.0], [0.0], [0.0], [0.0], [1.0], [0.0], [0.0], [0.0]
            )


class TestWaitingAndThroughput:
    def test_average_waiting_time(self):
        assert average_waiting_time([0.0, 0.0], [1.0, 3.0]) == 2.0

    def test_start_before_submission_rejected(self):
        with pytest.raises(ValueError):
            average_waiting_time([5.0], [1.0])

    def test_throughput_default_horizon(self):
        assert throughput([1.0, 2.0, 4.0]) == pytest.approx(0.75)

    def test_throughput_explicit_horizon(self):
        assert throughput([1.0, 2.0], horizon=10.0) == pytest.approx(0.2)

    def test_throughput_bad_horizon(self):
        with pytest.raises(ValueError):
            throughput([1.0], horizon=0.0)


class TestVmViews:
    def test_load_counts(self):
        np.testing.assert_array_equal(
            vm_load_counts([0, 0, 2], num_vms=4), [2, 0, 1, 0]
        )

    def test_load_counts_out_of_range(self):
        with pytest.raises(ValueError):
            vm_load_counts([0, 9], num_vms=4)

    def test_utilization(self):
        np.testing.assert_allclose(
            vm_utilization([5.0, 10.0], horizon=10.0), [0.5, 1.0]
        )

    def test_utilization_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            vm_utilization([20.0], horizon=10.0)
        with pytest.raises(ValueError):
            vm_utilization([1.0], horizon=0.0)


class TestJainFairness:
    def test_perfect_balance_is_one(self):
        from repro.metrics.definitions import jain_fairness_index

        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_loaded_vm_is_one_over_n(self):
        from repro.metrics.definitions import jain_fairness_index

        assert jain_fairness_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_bounds(self):
        from repro.metrics.definitions import jain_fairness_index

        for loads in ([1.0, 5.0], [2.0, 2.0, 8.0, 1.0]):
            j = jain_fairness_index(loads)
            assert 1 / len(loads) <= j <= 1.0

    def test_validation(self):
        from repro.metrics.definitions import jain_fairness_index

        with pytest.raises(ValueError):
            jain_fairness_index([-1.0, 1.0])
        with pytest.raises(ValueError):
            jain_fairness_index([0.0, 0.0])

    @given(positive_times)
    def test_property_scale_invariant(self, loads):
        from repro.metrics.definitions import jain_fairness_index

        a = jain_fairness_index(loads)
        b = jain_fairness_index([x * 7.5 for x in loads])
        assert a == pytest.approx(b)
