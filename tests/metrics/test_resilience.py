"""Edge-case contract of the recovery/storm metrics."""

import math

import numpy as np
import pytest

from repro.cloud.simulation import SimulationResult
from repro.metrics.resilience import (
    RecoveryMetrics,
    makespan_degradation,
    recovery_metrics,
    storm_metrics,
)


def make_result(
    makespan=10.0,
    n=4,
    info=None,
    finish=None,
    submission=None,
    scenario_name="s",
):
    finish = np.asarray(finish if finish is not None else np.full(n, makespan))
    submission = np.asarray(submission if submission is not None else np.zeros(n))
    start = submission.copy()
    return SimulationResult(
        scenario_name=scenario_name,
        scheduler_name="sched",
        scheduling_time=0.0,
        makespan=makespan,
        time_imbalance=0.0,
        total_cost=0.0,
        assignment=np.zeros(n, dtype=np.int64),
        submission_times=submission,
        start_times=start,
        finish_times=finish,
        exec_times=finish - start,
        costs=np.zeros(n),
        info=dict(info or {}),
    )


class TestMakespanDegradation:
    def test_plain_ratio(self):
        assert makespan_degradation(10.0, 12.5) == 1.25

    @pytest.mark.parametrize("baseline", [0.0, -1.0, math.nan, math.inf])
    def test_degenerate_baseline_is_nan(self, baseline):
        assert math.isnan(makespan_degradation(baseline, 12.5))


class TestRecoveryMetricsContract:
    def test_no_faults_reports_clean_run(self):
        """A faulted run that saw no faults: ratio ~1, all counters zero."""
        metrics = recovery_metrics(make_result(), make_result())
        assert metrics.makespan_degradation == 1.0
        assert metrics.completed_fraction == 1.0
        assert metrics.retries == 0
        assert metrics.dead_lettered == 0
        assert metrics.mttr == 0.0
        assert metrics.sla_violations == 0
        assert metrics.time_to_restabilize == 0.0

    def test_no_recovery_observed_mttr_zero(self):
        metrics = recovery_metrics(
            make_result(), make_result(info={"retries": 0, "mttr": 0.0})
        )
        assert metrics.mttr == 0.0

    def test_empty_workload_fraction_nan(self):
        metrics = recovery_metrics(make_result(n=0), make_result(n=0))
        assert math.isnan(metrics.completed_fraction)

    def test_zero_baseline_degradation_nan(self):
        metrics = recovery_metrics(make_result(makespan=0.0), make_result())
        assert math.isnan(metrics.makespan_degradation)

    def test_scenario_mismatch_rejected(self):
        with pytest.raises(ValueError, match="scenario mismatch"):
            recovery_metrics(make_result(), make_result(scenario_name="other"))

    def test_summary_includes_storm_fields(self):
        summary = RecoveryMetrics(
            makespan_degradation=1.0,
            completed_fraction=1.0,
            retries=0,
            dead_lettered=0,
            lost_mi=0.0,
            mttr=0.0,
            reschedules=0,
        ).summary()
        assert summary["sla_violations"] == 0.0
        assert summary["time_to_restabilize"] == 0.0


class TestStormMetrics:
    def test_no_slo_passes_through(self):
        metrics = storm_metrics(make_result(), make_result())
        assert metrics.sla_violations == 0
        assert metrics.time_to_restabilize == 0.0

    def test_counts_flow_time_violations(self):
        stormy = make_result(
            finish=[5.0, 40.0, 50.0, 8.0],
            submission=[0.0, 2.0, 3.0, 1.0],
            info={"first_fault_time": 4.0},
        )
        metrics = storm_metrics(make_result(), stormy, sla_seconds=30.0)
        assert metrics.sla_violations == 2
        assert metrics.time_to_restabilize == 50.0 - 4.0

    def test_no_fault_time_means_zero_restabilize(self):
        stormy = make_result(finish=[100.0, 100.0, 100.0, 100.0])
        metrics = storm_metrics(make_result(), stormy, sla_seconds=30.0)
        assert metrics.sla_violations == 4
        assert metrics.time_to_restabilize == 0.0

    def test_no_violations_means_zero_restabilize(self):
        stormy = make_result(info={"first_fault_time": 1.0})
        metrics = storm_metrics(make_result(), stormy, sla_seconds=30.0)
        assert metrics.sla_violations == 0
        assert metrics.time_to_restabilize == 0.0

    @pytest.mark.parametrize("sla", [0.0, -1.0, math.nan, math.inf])
    def test_bad_slo_rejected(self, sla):
        with pytest.raises(ValueError, match="sla_seconds"):
            storm_metrics(make_result(), make_result(), sla_seconds=sla)
