"""SLA / deadline metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.sla import (
    SlaReport,
    lateness,
    relative_deadlines,
    sla_report,
    tardiness,
    violations,
)


class TestPerTask:
    def test_lateness_signed(self):
        np.testing.assert_allclose(
            lateness([5.0, 10.0], [7.0, 8.0]), [-2.0, 2.0]
        )

    def test_tardiness_clamped(self):
        np.testing.assert_allclose(
            tardiness([5.0, 10.0], [7.0, 8.0]), [0.0, 2.0]
        )

    def test_violations_boolean(self):
        np.testing.assert_array_equal(
            violations([5.0, 10.0, 8.0], [7.0, 8.0, 8.0]), [False, True, False]
        )

    def test_infinite_deadline_never_violates(self):
        assert not violations([1e12], [np.inf])[0]

    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="aligned"):
            lateness([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-empty"):
            lateness([], [])


class TestReport:
    def test_counts_and_rates(self):
        report = sla_report([5.0, 10.0, 9.0], [7.0, 8.0, 10.0])
        assert report == SlaReport(
            total=3,
            violated=1,
            violation_rate=pytest.approx(1 / 3),
            mean_tardiness=pytest.approx(2 / 3),
            max_tardiness=2.0,
        )
        assert "1/3" in str(report)

    def test_unconstrained_tasks_excluded_from_total(self):
        report = sla_report([5.0, 10.0], [np.inf, 8.0])
        assert report.total == 1
        assert report.violated == 1
        assert report.violation_rate == 1.0

    def test_all_unconstrained(self):
        report = sla_report([5.0], [np.inf])
        assert report.total == 0
        assert report.violation_rate == 0.0


class TestRelativeDeadlines:
    def test_formula(self):
        d = relative_deadlines([1000.0, 2000.0], vm_mean_mips=1000.0, slack_factor=2.0)
        np.testing.assert_allclose(d, [2.0, 4.0])

    def test_arrival_offsets(self):
        d = relative_deadlines(
            [1000.0], vm_mean_mips=1000.0, slack_factor=1.0, arrival_times=[5.0]
        )
        np.testing.assert_allclose(d, [6.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_deadlines([1.0], vm_mean_mips=0.0, slack_factor=1.0)
        with pytest.raises(ValueError):
            relative_deadlines([1.0], vm_mean_mips=1.0, slack_factor=0.0)
