"""Telemetry state isolation for the observability tests.

The registry is process-global, so every test here starts from a clean,
disabled registry and leaves one behind — no test can poison another (or
the rest of the suite) through leftover spans or a stuck enabled flag.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import TELEMETRY


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.reset()
    TELEMETRY.disable()
    yield
    TELEMETRY.reset()
    TELEMETRY.disable()
