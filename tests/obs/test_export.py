"""Unit tests for the JSONL/CSV exporters and the text renderer."""

from __future__ import annotations

import csv
import json

import pytest

from repro.obs.export import (
    read_telemetry_jsonl,
    render_manifest,
    render_telemetry,
    write_telemetry_csv,
    write_telemetry_jsonl,
)
from repro.obs.manifest import capture_manifest
from repro.obs.telemetry import SpanStat, TelemetrySnapshot


@pytest.fixture
def snapshot():
    return TelemetrySnapshot(
        spans={"run": SpanStat(1, 2.0), "run/eval": SpanStat(10, 1.5)},
        counters={"kernel.evaluations": 10},
        gauges={"load": 0.75},
    )


class TestJsonl:
    def test_round_trip_without_manifest(self, tmp_path, snapshot):
        path = write_telemetry_jsonl(tmp_path / "t.jsonl", snapshot)
        restored, manifest = read_telemetry_jsonl(path)
        assert manifest is None
        assert restored.counters == snapshot.counters
        assert restored.gauges == snapshot.gauges
        assert {p: (s.count, s.total_s) for p, s in restored.spans.items()} == {
            p: (s.count, s.total_s) for p, s in snapshot.spans.items()
        }

    def test_round_trip_with_manifest(self, tmp_path, snapshot):
        manifest = capture_manifest(seed=7, engine="sweep", experiment="fig6a")
        path = write_telemetry_jsonl(tmp_path / "t.jsonl", snapshot, manifest)
        restored_snap, restored_manifest = read_telemetry_jsonl(path)
        assert restored_manifest == manifest
        assert restored_snap.counters == snapshot.counters

    def test_one_json_object_per_line(self, tmp_path, snapshot):
        path = write_telemetry_jsonl(tmp_path / "t.jsonl", snapshot)
        lines = path.read_text().splitlines()
        # 2 spans + 1 counter + 1 gauge
        assert len(lines) == 4
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["span", "span", "counter", "gauge"]

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "histogram", "name": "x"}) + "\n")
        with pytest.raises(ValueError, match="histogram"):
            read_telemetry_jsonl(path)

    def test_blank_lines_tolerated(self, tmp_path, snapshot):
        path = write_telemetry_jsonl(tmp_path / "t.jsonl", snapshot)
        path.write_text(path.read_text() + "\n\n")
        restored, _ = read_telemetry_jsonl(path)
        assert restored.counters == snapshot.counters

    def test_creates_parent_directories(self, tmp_path, snapshot):
        path = write_telemetry_jsonl(tmp_path / "deep" / "dir" / "t.jsonl", snapshot)
        assert path.exists()


class TestCsv:
    def test_header_and_rows(self, tmp_path, snapshot):
        path = write_telemetry_csv(tmp_path / "t.csv", snapshot)
        with path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["kind", "name", "count", "total_s", "value"]
        by_kind = {}
        for row in rows[1:]:
            by_kind.setdefault(row[0], []).append(row)
        assert len(by_kind["span"]) == 2
        counter_row = by_kind["counter"][0]
        assert counter_row[1] == "kernel.evaluations"
        assert counter_row[4] == "10"
        assert by_kind["gauge"][0][1] == "load"


class TestRender:
    def test_span_rows_indented_by_depth(self, snapshot):
        text = render_telemetry(snapshot)
        lines = text.splitlines()
        assert any(line.startswith("run ") for line in lines)
        assert any(line.startswith("  eval") for line in lines)
        assert "kernel.evaluations" in text
        assert "load" in text

    def test_title_underlined(self, snapshot):
        text = render_telemetry(snapshot, title="fig6a telemetry")
        assert text.splitlines()[0] == "fig6a telemetry"
        assert text.splitlines()[1] == "=" * len("fig6a telemetry")

    def test_empty_snapshot(self):
        assert "(no telemetry recorded)" in render_telemetry(TelemetrySnapshot())

    def test_render_manifest_includes_environment(self):
        manifest = capture_manifest(seed=9, engine="des", experiment="fig4a")
        text = render_manifest(manifest)
        assert "seed: 9" in text
        assert "engine: des" in text
        assert "package_version" in text
        assert '"experiment": "fig4a"' in text
        # deterministic manifests must not render a timestamp line
        assert "captured_at" not in text
