"""Instrumentation-level tests: the counters emitted by real subsystems.

These pin the two hard contracts of the observability layer:

* **conservation** — every kernel row request resolves to exactly one of
  computed / memoised, and every delta proposal resolves to exactly one
  of committed / rejected;
* **true no-op when disabled** — running the full pipeline with
  telemetry off records nothing and attaches no telemetry to results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cloud.simulation import CloudSimulation
from repro.obs.telemetry import TELEMETRY
from repro.optim import FitnessKernel, IncrementalLoads
from repro.schedulers import make_scheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


@pytest.fixture
def arrays():
    return heterogeneous_scenario(4, 24, seed=3).arrays()


def _counters():
    return obs.snapshot().counters


class TestRowConservation:
    """kernel.rows_computed + kernel.rows_memoised == kernel.rows_requested."""

    def test_matrix_path_counts_as_memoised(self, arrays):
        kernel = FitnessKernel(arrays, time_model="compute")
        assert kernel.matrix is not None
        with obs.enabled():
            for i in range(10):
                kernel.row(i % 5)
        counters = _counters()
        assert counters["kernel.rows_requested"] == 10
        assert counters["kernel.rows_memoised"] == 10
        assert counters.get("kernel.rows_computed", 0) == 0

    def test_row_cache_path(self, arrays):
        kernel = FitnessKernel(arrays, time_model="compute", max_matrix_cells=0)
        assert kernel.matrix is None
        with obs.enabled():
            for i in range(8):
                kernel.row(i % 4)  # second half are cache hits
        counters = _counters()
        requested = counters["kernel.rows_requested"]
        computed = counters.get("kernel.rows_computed", 0)
        memoised = counters.get("kernel.rows_memoised", 0)
        assert requested == 8
        assert computed + memoised == requested
        assert computed >= 1  # cold cache: something was actually computed
        assert memoised >= 4  # the repeat pass hit the cache

    def test_homogeneous_rows_collapse_to_one_computation(self):
        arrays = homogeneous_scenario(4, 16, seed=0).arrays()
        kernel = FitnessKernel(arrays, time_model="compute", max_matrix_cells=0)
        with obs.enabled():
            for i in range(16):
                kernel.row(i)
        counters = _counters()
        assert counters["kernel.rows_computed"] == 1
        assert counters["kernel.rows_memoised"] == 15


class TestDeltaConservation:
    """kernel.delta_committed + kernel.delta_rejected == kernel.delta_proposed."""

    def test_propose_commit_reject_counts(self, arrays):
        kernel = FitnessKernel(arrays, time_model="compute")
        inc = IncrementalLoads(kernel, np.zeros(kernel.num_cloudlets, dtype=np.int64))
        with obs.enabled():
            committed = rejected = 0
            for i in range(kernel.num_cloudlets):
                if inc.propose(i, (i % (kernel.num_vms - 1)) + 1) is None:
                    continue
                if i % 2:
                    inc.commit()
                    committed += 1
                else:
                    inc.reject()
                    rejected += 1
        counters = _counters()
        assert counters["kernel.delta_proposed"] == committed + rejected
        assert counters.get("kernel.delta_committed", 0) == committed
        assert counters.get("kernel.delta_rejected", 0) == rejected

    def test_annealing_run_conserves_deltas(self):
        scenario = heterogeneous_scenario(4, 24, seed=3)
        scheduler = make_scheduler("annealing", iterations=200)
        with obs.enabled():
            CloudSimulation(scenario, scheduler, seed=5).run()
        counters = _counters()
        proposed = counters.get("kernel.delta_proposed", 0)
        assert proposed > 0
        assert (
            counters.get("kernel.delta_committed", 0)
            + counters.get("kernel.delta_rejected", 0)
            == proposed
        )


class TestPipelineTelemetry:
    def test_disabled_run_is_a_true_noop(self):
        scenario = heterogeneous_scenario(4, 24, seed=3)
        result = CloudSimulation(
            scenario, make_scheduler("antcolony", num_ants=3, max_iterations=2), seed=5
        ).run()
        assert TELEMETRY.snapshot().is_empty
        assert "telemetry" not in result.info
        # the manifest rides along regardless: provenance is always on
        assert result.info["manifest"]["engine"] == "des"

    def test_enabled_run_attaches_span_tree_and_counters(self):
        scenario = heterogeneous_scenario(4, 24, seed=3)
        with obs.enabled():
            result = CloudSimulation(
                scenario,
                make_scheduler("antcolony", num_ants=3, max_iterations=2),
                seed=5,
            ).run()
        telemetry = result.info["telemetry"]
        paths = set(telemetry["spans"])
        assert "sim.schedule" in paths
        assert "sim.execute" in paths
        assert any(p.endswith("aco.construct") for p in paths)
        assert telemetry["counters"]["core.events_dispatched"] > 0
        manifest = result.info["manifest"]
        assert manifest["scheduler"]["class"] == "AntColonyScheduler"
        assert manifest["scenario"]["num_vms"] == 4
        assert manifest["captured_at"] is None

    def test_enabled_run_matches_disabled_run_metrics(self):
        scenario = heterogeneous_scenario(4, 24, seed=3)

        def run():
            return CloudSimulation(
                scenario, make_scheduler("rbs"), seed=5
            ).run()

        plain = run()
        with obs.enabled():
            observed = run()
        assert observed.makespan == plain.makespan
        assert observed.time_imbalance == plain.time_imbalance
        assert observed.total_cost == plain.total_cost
