"""Unit tests for run manifests: capture, determinism, round-trip."""

from __future__ import annotations

import numpy as np

from repro._version import __version__
from repro.obs.manifest import RunManifest, capture_manifest, scheduler_params
from repro.schedulers.aco import AntColonyScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


class TestCapture:
    def test_environment_fields(self):
        manifest = capture_manifest(seed=7, engine="des")
        assert manifest.package_version == __version__
        assert manifest.numpy_version == np.__version__
        assert manifest.python_version
        assert manifest.platform
        assert manifest.hostname
        assert manifest.seed == 7
        assert manifest.engine == "des"

    def test_scenario_summary(self):
        scenario = heterogeneous_scenario(4, 12, seed=42)
        manifest = capture_manifest(scenario=scenario)
        assert manifest.scenario["num_vms"] == 4
        assert manifest.scenario["num_cloudlets"] == 12
        assert manifest.scenario["seed"] == 42
        assert manifest.scenario["name"] == scenario.name

    def test_scheduler_summary(self):
        scheduler = AntColonyScheduler(num_ants=5, max_iterations=2)
        manifest = capture_manifest(scheduler=scheduler)
        assert manifest.scheduler["class"] == "AntColonyScheduler"
        params = manifest.scheduler["params"]
        assert params["num_ants"] == 5
        assert params["max_iterations"] == 2

    def test_extra_kwargs_land_in_extra(self):
        manifest = capture_manifest(experiment="fig6a", preset="quick", workers=None)
        assert manifest.extra == {
            "experiment": "fig6a",
            "preset": "quick",
            "workers": None,
        }


class TestDeterminism:
    def test_no_timestamp_by_default(self):
        assert capture_manifest(seed=0).captured_at is None

    def test_captures_are_bit_comparable(self):
        scenario = heterogeneous_scenario(4, 12, seed=42)
        scheduler = AntColonyScheduler(num_ants=5, max_iterations=2)
        a = capture_manifest(scenario=scenario, scheduler=scheduler, seed=1, engine="des")
        b = capture_manifest(scenario=scenario, scheduler=scheduler, seed=1, engine="des")
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_timestamp_opt_in(self):
        manifest = capture_manifest(timestamp=True)
        assert manifest.captured_at is not None
        # ISO-8601 with explicit UTC offset
        assert "T" in manifest.captured_at
        assert manifest.captured_at.endswith("+00:00")


class TestRoundTrip:
    def test_to_from_dict(self):
        scenario = heterogeneous_scenario(4, 12, seed=42)
        scheduler = AntColonyScheduler(num_ants=5, max_iterations=2)
        manifest = capture_manifest(
            scenario=scenario, scheduler=scheduler, seed=1, engine="des", note="x"
        )
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_from_dict_ignores_unknown_keys(self):
        manifest = RunManifest.from_dict({"seed": 3, "kind": "manifest", "bogus": 1})
        assert manifest.seed == 3


class TestSchedulerParams:
    def test_drops_private_and_unserialisable(self):
        class Fake:
            def __init__(self):
                self.alpha = 1.5
                self.name = "fake"
                self.count = np.int64(4)
                self._secret = "hidden"
                self.matrix = np.zeros((2, 2))  # not JSON-safe -> dropped

        params = scheduler_params(Fake())
        assert params == {"alpha": 1.5, "name": "fake", "count": 4}
        assert isinstance(params["count"], int)
