"""Unit tests for the span/counter/gauge registry."""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    TELEMETRY,
    SpanStat,
    Telemetry,
    TelemetrySnapshot,
    _NULL_SPAN,
)
from repro.obs import telemetry as tel


class TestDisabledNoOp:
    def test_snapshot_empty_after_instrumented_ops(self):
        with tel.span("outer"):
            with tel.span("outer/inner"):
                tel.count("things", 5)
                tel.gauge("level", 1.5)
        snap = tel.snapshot()
        assert snap.is_empty
        assert snap.spans == {}
        assert snap.counters == {}
        assert snap.gauges == {}

    def test_span_returns_shared_null_singleton(self):
        assert tel.span("a") is _NULL_SPAN
        assert tel.span("b") is _NULL_SPAN
        assert TELEMETRY.span("c") is _NULL_SPAN

    def test_null_span_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with tel.span("a"):
                raise RuntimeError("propagates")


class TestSpans:
    def test_hierarchical_paths(self):
        with tel.enabled():
            with tel.span("run"):
                with tel.span("phase_a"):
                    pass
                with tel.span("phase_b"):
                    with tel.span("leaf"):
                        pass
        snap = tel.snapshot()
        assert sorted(snap.spans) == [
            "run",
            "run/phase_a",
            "run/phase_b",
            "run/phase_b/leaf",
        ]

    def test_repeated_spans_aggregate(self):
        with tel.enabled():
            for _ in range(4):
                with tel.span("tick"):
                    pass
        stat = tel.snapshot().spans["tick"]
        assert stat.count == 4
        assert stat.total_s >= 0.0
        assert stat.mean_s == pytest.approx(stat.total_s / 4)

    def test_span_pops_stack_on_exception(self):
        with tel.enabled():
            with pytest.raises(ValueError):
                with tel.span("outer"):
                    raise ValueError("body failed")
            # stack must be balanced: a sibling span is root-level again
            with tel.span("sibling"):
                pass
        snap = tel.snapshot()
        assert "outer" in snap.spans
        assert "sibling" in snap.spans
        assert "outer/sibling" not in snap.spans

    def test_sibling_instances_do_not_share_paths(self):
        registry = Telemetry()
        registry.enable()
        with registry.span("a"):
            pass
        assert "a" in registry.snapshot().spans
        assert "a" not in TELEMETRY.snapshot().spans


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        with tel.enabled():
            tel.count("n")
            tel.count("n", 4)
            tel.count("m", 2)
        snap = tel.snapshot()
        assert snap.counters == {"n": 5, "m": 2}

    def test_gauge_latest_write_wins(self):
        with tel.enabled():
            tel.gauge("temp", 1.0)
            tel.gauge("temp", 0.25)
        assert tel.snapshot().gauges == {"temp": 0.25}

    def test_reset_preserves_enabled_flag(self):
        tel.enable()
        tel.count("n")
        tel.reset()
        assert tel.is_enabled()
        assert tel.snapshot().is_empty
        tel.disable()


class TestEnabledContext:
    def test_restores_prior_state(self):
        assert not tel.is_enabled()
        with tel.enabled():
            assert tel.is_enabled()
            with tel.enabled(False):
                assert not tel.is_enabled()
            assert tel.is_enabled()
        assert not tel.is_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(KeyError):
            with tel.enabled():
                raise KeyError("boom")
        assert not tel.is_enabled()


class TestSnapshotAlgebra:
    def test_diff_isolates_region(self):
        with tel.enabled():
            tel.count("n", 3)
            with tel.span("warmup"):
                pass
            before = tel.snapshot()
            tel.count("n", 2)
            tel.count("fresh", 1)
            with tel.span("warmup"):
                pass
            with tel.span("work"):
                pass
            delta = tel.snapshot().diff(before)
        assert delta.counters == {"n": 2, "fresh": 1}
        assert delta.spans["warmup"].count == 1
        assert delta.spans["work"].count == 1

    def test_diff_of_identical_snapshots_is_empty(self):
        with tel.enabled():
            tel.count("n", 3)
            with tel.span("a"):
                pass
        snap = tel.snapshot()
        assert snap.diff(snap).is_empty

    def test_merge_sums_spans_and_counters(self):
        a = TelemetrySnapshot(
            spans={"x": SpanStat(2, 1.0)}, counters={"n": 3}, gauges={"g": 1.0}
        )
        b = TelemetrySnapshot(
            spans={"x": SpanStat(1, 0.5), "y": SpanStat(1, 0.25)},
            counters={"n": 4, "m": 1},
            gauges={"g": 2.0},
        )
        merged = a.merge(b)
        assert merged.spans["x"].count == 3
        assert merged.spans["x"].total_s == pytest.approx(1.5)
        assert merged.spans["y"].count == 1
        assert merged.counters == {"n": 7, "m": 1}
        assert merged.gauges == {"g": 2.0}  # other wins
        # merge must not mutate its inputs
        assert a.spans["x"].count == 2
        assert a.counters == {"n": 3}

    def test_merge_snapshot_folds_into_registry(self):
        worker = TelemetrySnapshot(
            spans={"cell": SpanStat(5, 2.0)}, counters={"rows": 10}
        )
        with tel.enabled():
            tel.count("rows", 1)
            TELEMETRY.merge_snapshot(worker)
            snap = tel.snapshot()
        assert snap.counters["rows"] == 11
        assert snap.spans["cell"].count == 5

    def test_to_dict_round_trip(self):
        with tel.enabled():
            with tel.span("a"):
                with tel.span("b"):
                    pass
            tel.count("n", 7)
            tel.gauge("g", 0.5)
        snap = tel.snapshot()
        restored = TelemetrySnapshot.from_dict(snap.to_dict())
        assert restored.counters == snap.counters
        assert restored.gauges == snap.gauges
        assert sorted(restored.spans) == sorted(snap.spans)
        for path, stat in snap.spans.items():
            assert restored.spans[path].count == stat.count
            assert restored.spans[path].total_s == pytest.approx(stat.total_s)
