"""FitnessKernel and IncrementalLoads unit/property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import FitnessKernel, IncrementalLoads
from repro.schedulers.base import estimate_makespan, estimated_vm_finish_times
from repro.workloads.heterogeneous import heterogeneous_scenario


@pytest.fixture(scope="module")
def arrays():
    return heterogeneous_scenario(num_vms=7, num_cloudlets=40, seed=3).arrays()


def _random_assignment(arrays, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, arrays.num_vms, size=arrays.num_cloudlets, dtype=np.int64)


class TestTimeAccess:
    @pytest.mark.parametrize("time_model", ["compute", "eq6"])
    def test_matrix_vs_row_fallback_agree(self, arrays, time_model):
        with_matrix = FitnessKernel(arrays, time_model=time_model)
        without = FitnessKernel(arrays, time_model=time_model, max_matrix_cells=0)
        assert with_matrix.matrix is not None
        assert without.matrix is None
        for i in range(arrays.num_cloudlets):
            np.testing.assert_allclose(with_matrix.row(i), without.row(i), rtol=1e-12)

    def test_memory_cap_disables_matrix(self, arrays):
        n_cells = arrays.num_cloudlets * arrays.num_vms
        assert FitnessKernel(arrays, max_matrix_cells=n_cells).matrix is not None
        assert FitnessKernel(arrays, max_matrix_cells=n_cells - 1).matrix is None

    def test_compute_time_is_length_over_capacity(self, arrays):
        kernel = FitnessKernel(arrays, time_model="compute")
        i, j = 3, 5
        expected = arrays.cloudlet_length[i] / (arrays.vm_mips[j] * arrays.vm_pes[j])
        assert kernel.time(i, j) == pytest.approx(expected, rel=1e-12)

    def test_eq6_row_matches_expected_exec_time(self, arrays):
        kernel = FitnessKernel(arrays, time_model="eq6", max_matrix_cells=0)
        for i in (0, 11, 39):
            np.testing.assert_allclose(
                kernel.row(i), arrays.expected_exec_time(i), rtol=1e-12
            )

    def test_rejects_bad_params(self, arrays):
        with pytest.raises(ValueError):
            FitnessKernel(arrays, time_model="nope")
        with pytest.raises(ValueError):
            FitnessKernel(arrays, max_matrix_cells=-1)


class TestWholeAssignment:
    @pytest.mark.parametrize("time_model", ["compute", "eq6"])
    @pytest.mark.parametrize("max_cells", [10_000_000, 0])
    def test_loads_match_reference_sums(self, arrays, time_model, max_cells):
        kernel = FitnessKernel(arrays, time_model=time_model, max_matrix_cells=max_cells)
        assignment = _random_assignment(arrays, seed=1)
        times = np.array([kernel.time(i, v) for i, v in enumerate(assignment)])
        expected = estimated_vm_finish_times(assignment, times, arrays.num_vms)
        np.testing.assert_allclose(kernel.loads_of(assignment), expected, rtol=1e-12)
        assert kernel.makespan(assignment) == pytest.approx(expected.max(), rel=1e-12)

    def test_compute_makespan_matches_estimate_makespan(self, arrays):
        kernel = FitnessKernel(arrays, time_model="compute")
        assignment = _random_assignment(arrays, seed=2)
        expected = estimate_makespan(
            assignment, arrays.cloudlet_length, arrays.vm_mips, arrays.vm_pes
        )
        assert kernel.makespan(assignment) == pytest.approx(expected, rel=1e-12)


class TestBatchEvaluation:
    @pytest.mark.parametrize("time_model", ["compute", "eq6"])
    @pytest.mark.parametrize("max_cells", [10_000_000, 0])
    def test_batch_matches_serial_makespans(self, arrays, time_model, max_cells):
        kernel = FitnessKernel(arrays, time_model=time_model, max_matrix_cells=max_cells)
        rng = np.random.default_rng(9)
        positions = rng.integers(0, arrays.num_vms, size=(6, arrays.num_cloudlets))
        batch = kernel.batch_makespans(positions)
        serial = np.array([kernel.makespan(p) for p in positions])
        np.testing.assert_allclose(batch, serial, rtol=1e-12)

    def test_uniform_batch_matches_general_path_for_identical_cloudlets(self):
        from repro.workloads.homogeneous import homogeneous_scenario

        arrays = homogeneous_scenario(num_vms=6, num_cloudlets=30, seed=4).arrays()
        kernel = FitnessKernel(arrays, time_model="eq6")
        rng = np.random.default_rng(5)
        positions = rng.integers(0, 6, size=(5, 30))
        np.testing.assert_allclose(
            kernel.uniform_batch_makespans(positions),
            kernel.batch_makespans(positions),
            rtol=1e-12,
        )

    def test_evaluation_counter_tracks_members(self, arrays):
        kernel = FitnessKernel(arrays)
        assert kernel.evaluations == 0
        positions = np.zeros((4, arrays.num_cloudlets), dtype=np.int64)
        kernel.batch_makespans(positions)
        assert kernel.evaluations == 4
        kernel.makespan(positions[0])
        assert kernel.evaluations == 5


class TestImbalance:
    def test_imbalance_formula(self):
        loads = np.array([1.0, 2.0, 3.0])
        assert FitnessKernel.imbalance_of_loads(loads) == pytest.approx(1.0)
        assert FitnessKernel.imbalance_of_loads(np.zeros(3)) == 0.0


class TestIncrementalLoads:
    def test_propose_commit_matches_full_recompute(self, arrays):
        kernel = FitnessKernel(arrays)
        state = IncrementalLoads(kernel, _random_assignment(arrays, seed=6))
        rng = np.random.default_rng(7)
        for _ in range(200):
            i = int(rng.integers(arrays.num_cloudlets))
            v = int(rng.integers(arrays.num_vms))
            candidate = state.propose(i, v)
            if candidate is None:
                continue
            if rng.random() < 0.5:
                state.commit()
            else:
                state.reject()
            reference = kernel.loads_of(state.assignment)
            np.testing.assert_allclose(state.loads, reference, rtol=1e-12)
            assert state.makespan == pytest.approx(reference.max(), rel=1e-12)

    def test_candidate_equals_post_move_makespan(self, arrays):
        kernel = FitnessKernel(arrays)
        state = IncrementalLoads(kernel, _random_assignment(arrays, seed=8))
        rng = np.random.default_rng(9)
        for _ in range(100):
            i = int(rng.integers(arrays.num_cloudlets))
            v = int(rng.integers(arrays.num_vms))
            moved = state.assignment.copy()
            candidate = state.propose(i, v)
            if candidate is None:
                continue
            moved[i] = v
            assert candidate == pytest.approx(
                kernel.loads_of(moved).max(), rel=1e-12
            )
            state.reject()

    def test_noop_move_returns_none(self, arrays):
        kernel = FitnessKernel(arrays)
        state = IncrementalLoads(kernel, np.zeros(arrays.num_cloudlets, dtype=np.int64))
        assert state.propose(0, 0) is None

    def test_pending_protocol_enforced(self, arrays):
        kernel = FitnessKernel(arrays)
        state = IncrementalLoads(kernel, _random_assignment(arrays, seed=10))
        with pytest.raises(RuntimeError):
            state.commit()
        with pytest.raises(RuntimeError):
            state.reject()
        assert state.propose(0, (int(state.assignment[0]) + 1) % arrays.num_vms)
        with pytest.raises(RuntimeError):
            state.propose(1, 0)
        state.reject()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        moves=st.lists(
            st.tuples(st.integers(0, 39), st.integers(0, 6), st.booleans()),
            min_size=1,
            max_size=60,
        ),
    )
    def test_property_no_drift_under_any_move_sequence(self, seed, moves):
        arrays = heterogeneous_scenario(num_vms=7, num_cloudlets=40, seed=3).arrays()
        kernel = FitnessKernel(arrays)
        state = IncrementalLoads(kernel, _random_assignment(arrays, seed=seed))
        for i, v, accept in moves:
            if state.propose(i, v) is None:
                continue
            if accept:
                state.commit()
            else:
                state.reject()
        reference = kernel.loads_of(state.assignment)
        np.testing.assert_allclose(state.loads, reference, rtol=1e-9)
        assert state.makespan == pytest.approx(reference.max(), rel=1e-9)
