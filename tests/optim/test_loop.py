"""IterativeOptimizer / ConvergenceTrace / MoveOperator driver tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim import Candidate, ConvergenceTrace, IterativeOptimizer, MoveOperator


class _ScriptedOperator(MoveOperator):
    """Replays a scripted sequence of (fitness, evaluations) candidates."""

    def __init__(self, initial, script):
        self.initial = initial
        self.script = script
        self.steps_taken = 0

    def initialize(self, rng):
        if self.initial is None:
            return None
        fitness, evals = self.initial
        return Candidate(np.array([0, 1]), fitness, evaluations=evals)

    def step(self, iteration, rng, incumbent_assignment, incumbent_fitness):
        self.steps_taken += 1
        if iteration >= len(self.script):
            return None
        fitness, evals = self.script[iteration]
        return Candidate(np.array([iteration, iteration]), fitness, evaluations=evals)

    def info(self):
        return {"steps_taken": self.steps_taken}


def _run(initial, script, **kwargs):
    op = _ScriptedOperator(initial, script)
    outcome = IterativeOptimizer(op, **kwargs).run(np.random.default_rng(0))
    return op, outcome


class TestStoppingPolicies:
    def test_runs_to_max_iterations(self):
        op, outcome = _run((10.0, 1), [(9.0, 1), (8.0, 1), (7.0, 1)], max_iterations=3)
        assert outcome.stopped == "max_iterations"
        assert outcome.iterations == 3
        assert outcome.fitness == 7.0
        assert outcome.evaluations == 4
        assert outcome.info["steps_taken"] == 3

    def test_stagnation_stop(self):
        op, outcome = _run(
            (10.0, 1),
            [(9.0, 1), (9.0, 1), (9.5, 1), (1.0, 1)],
            max_iterations=10,
            patience=2,
        )
        assert outcome.stopped == "stagnation"
        # improves at iter 1, then two stale iterations trip patience=2
        # before the scripted 1.0 is ever reached.
        assert outcome.iterations == 3
        assert outcome.fitness == 9.0

    def test_evaluation_budget_stop(self):
        op, outcome = _run(
            (10.0, 2),
            [(9.0, 2), (8.0, 2), (7.0, 2)],
            max_iterations=10,
            max_evaluations=5,
        )
        assert outcome.stopped == "budget"
        assert outcome.evaluations >= 5
        assert outcome.iterations == 2

    def test_strict_improvement_ties_keep_incumbent(self):
        op, outcome = _run((5.0, 1), [(5.0, 1), (5.0, 1)], max_iterations=2)
        # Incumbent assignment stays the initial one on exact ties.
        np.testing.assert_array_equal(outcome.assignment, [0, 1])

    def test_no_candidate_at_all_raises(self):
        with pytest.raises(RuntimeError):
            _run(None, [], max_iterations=1)

    def test_invalid_params_rejected(self):
        op = _ScriptedOperator((1.0, 1), [])
        for kwargs in (
            {"max_iterations": 0},
            {"max_iterations": 1, "patience": 0},
            {"max_iterations": 1, "max_evaluations": 0},
            {"max_iterations": 1, "record_every": 0},
        ):
            with pytest.raises(ValueError):
                IterativeOptimizer(op, **kwargs)


class TestTrace:
    def test_trace_records_initial_and_final(self):
        _, outcome = _run((10.0, 1), [(9.0, 1), (8.0, 1)], max_iterations=2)
        trace = outcome.trace
        assert trace.iteration == [0, 1, 2]
        assert trace.best_fitness == [10.0, 9.0, 8.0]
        assert trace.evaluations == [1, 2, 3]
        assert len(trace) == 3
        assert trace.is_monotone()

    def test_record_every_thins_interior_points(self):
        _, outcome = _run(
            (10.0, 1),
            [(9.0, 1)] * 10,
            max_iterations=10,
            record_every=4,
        )
        assert outcome.trace.iteration == [0, 4, 8, 10]

    def test_record_trace_disabled(self):
        _, outcome = _run((10.0, 1), [(9.0, 1)], max_iterations=1, record_trace=False)
        assert outcome.trace is None

    def test_monotone_detects_regression(self):
        trace = ConvergenceTrace()
        trace.record(0, 5.0, 1, 0.0)
        trace.record(1, 6.0, 2, 0.0)
        assert not trace.is_monotone()

    def test_as_dict_round_trip(self):
        _, outcome = _run((10.0, 1), [(9.0, 1)], max_iterations=1)
        d = outcome.trace.as_dict()
        assert set(d) == {"iteration", "best_fitness", "evaluations", "wall_clock_s"}
        assert d["best_fitness"] == [10.0, 9.0]


class TestFinalize:
    def test_finalize_override_wins(self):
        class _Op(_ScriptedOperator):
            def finalize(self, incumbent_assignment, incumbent_fitness):
                return np.array([7, 7]), 123.0

        op = _Op((10.0, 1), [(9.0, 1)])
        outcome = IterativeOptimizer(op, max_iterations=1).run(np.random.default_rng(0))
        np.testing.assert_array_equal(outcome.assignment, [7, 7])
        assert outcome.fitness == 123.0
