"""Seeded hypothesis strategies for the streaming property suite.

Every scenario drawn here lives in the *exact arithmetic domain*: VM MIPS
are powers of two, cloudlet lengths are integers, and every VM attribute
and cost constant is a dyadic rational (exactly representable in binary
floating point).  Execution times ``length / mips`` are then exact
divisions, per-cloudlet costs are exact products, and all the partial
sums either pipeline forms stay far below 2**53 — so chunked and
monolithic computations must agree **bit-for-bit**, and any difference a
property test reports is a real ordering/state bug, never float noise.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.workloads.spec import (
    CloudletSpec,
    DatacenterSpec,
    ScenarioSpec,
    VmSpec,
)

#: power-of-two MIPS keep ``length / mips`` an exact shift.
DYADIC_MIPS = (256.0, 512.0, 1024.0, 2048.0)
#: dyadic cost constants ($ per unit); products with dyadic attributes
#: are exact.
DYADIC_COSTS = (0.0, 0.125, 0.25, 0.5, 1.0, 2.0, 3.0)
#: dyadic VM RAM / image sizes (power-of-two MB).
DYADIC_RAM = (128.0, 256.0, 512.0)
DYADIC_SIZE = (1024.0, 4096.0)
#: dyadic cloudlet file/output sizes (MB).
DYADIC_FILE = (0.0, 128.0, 256.0)

#: chunk sizes exercised against every scenario — 1 (degenerate), small
#: primes (chunks never align with VM counts), and larger-than-workload.
CHUNK_SIZES = (1, 3, 7, 16, 50, 1_000)


def dyadic_cost() -> st.SearchStrategy[float]:
    return st.sampled_from(DYADIC_COSTS)


@st.composite
def dyadic_scenarios(
    draw,
    max_vms: int = 12,
    max_cloudlets: int = 120,
    max_datacenters: int = 3,
) -> ScenarioSpec:
    """A random single-PE scenario whose metrics are exact in float64."""
    num_datacenters = draw(st.integers(1, max_datacenters))
    num_vms = draw(st.integers(1, max_vms))
    num_cloudlets = draw(st.integers(1, max_cloudlets))
    datacenters = tuple(
        DatacenterSpec(
            characteristics=DatacenterCharacteristics(
                cost_per_mem=draw(dyadic_cost()),
                cost_per_storage=draw(dyadic_cost()),
                cost_per_bw=draw(dyadic_cost()),
                cost_per_cpu=draw(dyadic_cost()),
            )
        )
        for _ in range(num_datacenters)
    )
    vms = tuple(
        VmSpec(
            mips=draw(st.sampled_from(DYADIC_MIPS)),
            pes=1,
            ram=draw(st.sampled_from(DYADIC_RAM)),
            bw=500.0,
            size=draw(st.sampled_from(DYADIC_SIZE)),
        )
        for _ in range(num_vms)
    )
    cloudlets = tuple(
        CloudletSpec(
            length=float(draw(st.integers(1, 4096))),
            pes=1,
            file_size=draw(st.sampled_from(DYADIC_FILE)),
            output_size=draw(st.sampled_from(DYADIC_FILE)),
        )
        for _ in range(num_cloudlets)
    )
    vm_datacenter = tuple(
        draw(st.integers(0, num_datacenters - 1)) for _ in range(num_vms)
    )
    seed = draw(st.integers(0, 2**16))
    return ScenarioSpec(
        name=f"prop-dyadic-{num_vms}x{num_cloudlets}",
        datacenters=datacenters,
        vms=vms,
        cloudlets=cloudlets,
        vm_datacenter=vm_datacenter,
        seed=seed,
    )


def chunk_sizes() -> st.SearchStrategy[int]:
    return st.sampled_from(CHUNK_SIZES)


def family_points(
    max_vms: int = 15, max_cloudlets: int = 150
) -> st.SearchStrategy[tuple[int, int, int]]:
    """(num_vms, num_cloudlets, seed) for the paper's generator families.

    ``num_vms`` starts at 4 — the generators place VMs round-robin over
    their default datacenters (2 homogeneous, 4 heterogeneous) and reject
    fleets smaller than the datacenter count.
    """
    return st.tuples(
        st.integers(4, max_vms),
        st.integers(1, max_cloudlets),
        st.integers(0, 2**16),
    )
