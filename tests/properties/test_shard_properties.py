"""Property-based correctness suite for sharded streaming execution.

Sharding's safety case mirrors the chunking one (``strategies.py``): on
the dyadic scenario domain every float the pipeline produces is exact, so
a sharded run must equal the serial run **bit-for-bit** — any difference
is a real carry/merge bug, never float noise.  The suite pins:

* **Planner soundness** — shard plans partition the chunk range exactly,
  for any shard count and chunk geometry.
* **Sharded == serial** — every native streaming scheduler and the
  in-memory fallback produce bit-identical bounded metrics, per-VM
  accumulators, and (in collect mode) assignments and per-cloudlet
  timelines across shard counts {1, 2, 3, 7} × uneven chunk geometries.

Shards run inline (``shard_parallel=False``) so hypothesis examples stay
fast; the spawn-pool transport is covered by the integration tests in
``tests/cloud/test_sharded_streaming.py`` (identical shard math — the
pool only moves where :func:`~repro.cloud.fast.execute_shard` runs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.fast import StreamingSimulation
from repro.schedulers import make_scheduler
from repro.schedulers.streaming import (
    STREAMING_SCHEDULERS,
    make_streaming_scheduler,
)
from repro.workloads.streaming import ScenarioChunks, plan_shards

from tests.properties.strategies import chunk_sizes, dyadic_scenarios

COMMON = settings(max_examples=20, deadline=None, derandomize=True)

#: shard counts exercised against every scenario — serial-degenerate,
#: even, odd, and more shards than most drawn streams have chunks.
SHARD_COUNTS = (1, 2, 3, 7)

#: in-memory schedulers exercising the materialising fallback path.
FALLBACK_SCHEDULERS = ("maxmin",)


def _stream(spec, chunk_size: int) -> ScenarioChunks:
    return ScenarioChunks.from_spec(spec, chunk_size=chunk_size)


def _assert_bounded_equal(sharded, serial) -> None:
    assert sharded.makespan == serial.makespan
    assert sharded.time_imbalance == serial.time_imbalance
    assert sharded.total_cost == serial.total_cost
    assert sharded.num_chunks == serial.num_chunks
    assert sharded.vm_finish_times.tobytes() == serial.vm_finish_times.tobytes()
    assert sharded.vm_costs.tobytes() == serial.vm_costs.tobytes()


# -- planner soundness --------------------------------------------------------


@COMMON
@given(
    num_cloudlets=st.integers(1, 500),
    chunk_size=chunk_sizes(),
    shards=st.integers(1, 9),
)
def test_shard_plans_partition_the_stream(num_cloudlets, chunk_size, shards):
    from repro.workloads.streaming import homogeneous_stream

    stream = homogeneous_stream(5, num_cloudlets, chunk_size=chunk_size)
    plans = plan_shards(stream, shards)
    assert 1 <= len(plans) <= min(shards, stream.num_chunks)
    assert plans[0].chunk_start == 0
    assert plans[-1].chunk_stop == stream.num_chunks
    assert plans[0].start == 0
    assert plans[-1].stop == num_cloudlets
    for prev, nxt in zip(plans, plans[1:]):
        assert prev.chunk_stop == nxt.chunk_start
        assert prev.stop == nxt.start
    assert sum(p.num_cloudlets for p in plans) == num_cloudlets
    assert sum(p.num_chunks for p in plans) == stream.num_chunks


# -- sharded == serial, native schedulers -------------------------------------


@COMMON
@given(spec=dyadic_scenarios(), chunk_size=chunk_sizes(), seed=st.integers(0, 2**16))
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_sharded_equals_serial_bounded(name, spec, chunk_size, seed):
    stream = _stream(spec, chunk_size)
    serial = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=seed
    ).run()
    for shards in SHARD_COUNTS:
        sharded = StreamingSimulation(
            stream,
            make_streaming_scheduler(name),
            seed=seed,
            shards=shards,
            shard_parallel=False,
        ).run()
        _assert_bounded_equal(sharded, serial)


@COMMON
@given(
    spec=dyadic_scenarios(max_cloudlets=60),
    chunk_size=chunk_sizes(),
    seed=st.integers(0, 2**16),
)
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_sharded_collect_mode_is_byte_equal(name, spec, chunk_size, seed):
    stream = _stream(spec, chunk_size)
    serial = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=seed, collect=True
    ).run()
    for shards in (2, 3, 7):
        sharded = StreamingSimulation(
            stream,
            make_streaming_scheduler(name),
            seed=seed,
            collect=True,
            shards=shards,
            shard_parallel=False,
        ).run()
        assert sharded.assignment.tobytes() == serial.assignment.tobytes()
        assert sharded.start_times.tobytes() == serial.start_times.tobytes()
        assert sharded.finish_times.tobytes() == serial.finish_times.tobytes()
        assert sharded.costs.tobytes() == serial.costs.tobytes()
        assert sharded.makespan == serial.makespan
        assert sharded.total_cost == serial.total_cost


# -- sharded == serial, materialising fallback --------------------------------


@COMMON
@given(
    spec=dyadic_scenarios(max_cloudlets=60),
    chunk_size=chunk_sizes(),
    seed=st.integers(0, 2**16),
)
@pytest.mark.parametrize("name", FALLBACK_SCHEDULERS)
def test_sharded_fallback_equals_serial(name, spec, chunk_size, seed):
    stream = _stream(spec, chunk_size)
    serial = StreamingSimulation(stream, make_scheduler(name), seed=seed).run()
    for shards in SHARD_COUNTS:
        sharded = StreamingSimulation(
            stream,
            make_scheduler(name),
            seed=seed,
            shards=shards,
            shard_parallel=False,
        ).run()
        _assert_bounded_equal(sharded, serial)
