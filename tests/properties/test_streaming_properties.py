"""Property-based correctness suite for the streaming scheduling path.

The invariants here are the paper-scale path's whole safety case:

* **Generator equality** — chunked scenario generation reproduces the
  monolithic generators' columns bit-for-bit, for any chunk size.
* **Assignment validity** — every streamed assignment lands in
  ``[0, num_vms)`` and covers each cloudlet exactly once, so million-
  instruction totals (MI) are conserved.
* **Chunked == monolithic** — every streaming scheduler reproduces its
  batch counterpart's assignment exactly, and both execution modes of
  :class:`~repro.cloud.fast.StreamingSimulation` reproduce
  :class:`~repro.cloud.fast.FastSimulation`'s metrics exactly on the
  dyadic scenario domain (see ``strategies.py`` for why exactness is the
  right bar there).
* **No state leakage** — a reused scheduler instance equals a fresh one,
  for every registry scheduler and every streaming scheduler.

All properties run derandomised (fixed example set per test) so CI
failures reproduce locally byte-for-byte.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.fast import FastSimulation, StreamingSimulation
from repro.core.rng import spawn_rng
from repro.schedulers import SCHEDULER_REGISTRY, SchedulingContext, make_scheduler
from repro.schedulers.streaming import (
    STREAMING_SCHEDULERS,
    make_streaming_scheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario
from repro.workloads.streaming import (
    ScenarioChunks,
    heterogeneous_stream,
    homogeneous_stream,
)

from tests.properties.strategies import (
    chunk_sizes,
    dyadic_scenarios,
    family_points,
)

COMMON = settings(max_examples=25, deadline=None, derandomize=True)

#: per-cloudlet columns a chunk carries (VM/DC columns are shared refs).
CLOUDLET_COLUMNS = (
    "cloudlet_length",
    "cloudlet_pes",
    "cloudlet_file_size",
    "cloudlet_output_size",
)

#: metaheuristics need light parameters to keep property runs fast.
LIGHT_KWARGS: dict[str, dict] = {
    "antcolony": {"num_ants": 3, "max_iterations": 2},
    "pso": {"num_particles": 4, "max_iterations": 3},
    "ga": {"population_size": 6, "generations": 3},
    "annealing": {"iterations": 30},
    "gsa": {"num_agents": 4, "max_iterations": 3},
    "psogsa": {"num_particles": 4, "max_iterations": 3},
    "cuckoo-sos": {"ecosystem_size": 4, "max_iterations": 2},
}


def stream_assignment(stream: ScenarioChunks, name: str, seed: int) -> np.ndarray:
    """Run one streaming scheduler over all chunks; concatenated result."""
    scheduler = make_streaming_scheduler(name)
    rng = spawn_rng(seed, f"scheduler/{stream.name}")
    assigner = scheduler.open(stream, rng)
    return np.concatenate(
        [np.asarray(assigner.assign(chunk, offset)) for offset, chunk in stream]
    )


# -- generator equality -------------------------------------------------------


@COMMON
@given(point=family_points(), chunk_size=chunk_sizes())
@pytest.mark.parametrize("family", ["homogeneous", "heterogeneous"])
def test_chunked_generation_is_bit_equal(family, point, chunk_size):
    num_vms, num_cloudlets, seed = point
    if family == "homogeneous":
        spec = homogeneous_scenario(num_vms, num_cloudlets, seed=seed)
        stream = homogeneous_stream(num_vms, num_cloudlets, seed=seed, chunk_size=chunk_size)
    else:
        spec = heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)
        stream = heterogeneous_stream(num_vms, num_cloudlets, seed=seed, chunk_size=chunk_size)
    arrays = spec.arrays()
    chunks = list(stream)
    assert sum(c.num_cloudlets for _, c in chunks) == num_cloudlets
    for column in CLOUDLET_COLUMNS:
        streamed = np.concatenate([getattr(c, column) for _, c in chunks])
        assert streamed.tobytes() == getattr(arrays, column).tobytes(), column
    # VM/DC columns are identical on every chunk (shared references).
    for column in ("vm_mips", "vm_pes", "vm_ram", "vm_bw", "vm_size", "vm_datacenter",
                   "dc_cost_per_mem", "dc_cost_per_storage", "dc_cost_per_bw",
                   "dc_cost_per_cpu"):
        assert getattr(chunks[0][1], column).tobytes() == getattr(arrays, column).tobytes(), column


@COMMON
@given(point=family_points(max_vms=8, max_cloudlets=90))
def test_digest_is_chunk_size_invariant(point):
    num_vms, num_cloudlets, seed = point
    digests = {
        heterogeneous_stream(num_vms, num_cloudlets, seed=seed, chunk_size=cs).digest()
        for cs in (1, 7, 64, 10_000)
    }
    assert len(digests) == 1
    # The heterogeneous columns are seed-dependent, so a different seed
    # must change the content digest.  (The homogeneous family would not:
    # its columns are constant tables, and the digest hashes content.)
    other = heterogeneous_stream(num_vms, num_cloudlets, seed=seed + 1, chunk_size=7)
    assert other.digest() not in digests


# -- assignment validity + MI conservation ------------------------------------


@COMMON
@given(spec=dyadic_scenarios(), chunk_size=chunk_sizes())
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_streamed_assignment_valid_and_mi_conserved(name, spec, chunk_size):
    stream = ScenarioChunks.from_spec(spec, chunk_size=chunk_size)
    assignment = stream_assignment(stream, name, seed=spec.seed)
    assert assignment.shape == (spec.num_cloudlets,)
    assert np.issubdtype(assignment.dtype, np.integer)
    assert assignment.min() >= 0
    assert assignment.max() < spec.num_vms
    # MI conservation: folding lengths through the assignment loses nothing.
    lengths = spec.arrays().cloudlet_length
    per_vm_mi = np.zeros(spec.num_vms)
    np.add.at(per_vm_mi, assignment, lengths)
    assert per_vm_mi.sum() == pytest.approx(lengths.sum(), rel=0, abs=0)


# -- chunked == monolithic ----------------------------------------------------


@COMMON
@given(spec=dyadic_scenarios(), chunk_size=chunk_sizes())
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_streaming_assignment_matches_batch_scheduler(name, spec, chunk_size):
    stream = ScenarioChunks.from_spec(spec, chunk_size=chunk_size)
    streamed = stream_assignment(stream, name, seed=spec.seed)
    context = SchedulingContext.from_scenario(spec, seed=spec.seed)
    batch = make_scheduler(name).schedule_checked(context).assignment
    assert np.array_equal(streamed, np.asarray(batch))


@COMMON
@given(spec=dyadic_scenarios(), chunk_size=chunk_sizes())
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_streaming_metrics_match_in_memory_bit_for_bit(name, spec, chunk_size):
    stream = ScenarioChunks.from_spec(spec, chunk_size=chunk_size)
    memory = FastSimulation(spec, make_scheduler(name), seed=spec.seed).run()
    bounded = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=spec.seed
    ).run()
    collected = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=spec.seed, collect=True
    ).run()
    # Dyadic domain: no float reassociation slack, equality must be exact.
    for field in ("makespan", "time_imbalance", "total_cost"):
        assert getattr(bounded, field) == getattr(memory, field), field
        assert getattr(collected, field) == getattr(memory, field), field
    for field in ("assignment", "start_times", "finish_times", "exec_times", "costs"):
        assert getattr(collected, field).tobytes() == getattr(memory, field).tobytes(), field


@COMMON
@given(spec=dyadic_scenarios(max_cloudlets=80))
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_bounded_metrics_are_chunk_size_invariant(name, spec):
    reference = None
    for chunk_size in (1, 7, 64, 10_000):
        stream = ScenarioChunks.from_spec(spec, chunk_size=chunk_size)
        result = StreamingSimulation(
            stream, make_streaming_scheduler(name), seed=spec.seed
        ).run()
        observed = (
            result.makespan,
            result.time_imbalance,
            result.total_cost,
            result.vm_finish_times.tobytes(),
            result.vm_costs.tobytes(),
        )
        if reference is None:
            reference = observed
        else:
            assert observed == reference, chunk_size


# -- bounded state (tentpole: O(num_vms + chunk_size) assigners) --------------


def _reachable_container_lengths(root: object) -> dict[str, int]:
    """Length of every container reachable from ``root``, keyed by path.

    Walks instance ``__dict__``/``__slots__`` attributes, dict values,
    list/tuple items, ndarray sizes — and the closure cells of the
    object's methods, because inner-class assigners keep cross-chunk
    state in closures rather than attributes (the removed O(n) RBS
    pre-draw lived in one).  Cycle-safe via an id-visited set.
    """
    lengths: dict[str, int] = {}
    seen: set[int] = set()

    def visit(obj: object, path: str) -> None:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            lengths[path] = int(obj.size)
        elif isinstance(obj, (list, tuple)):
            lengths[path] = len(obj)
            for i, item in enumerate(obj):
                visit(item, f"{path}[{i}]")
        elif isinstance(obj, dict):
            lengths[path] = len(obj)
            for key, value in obj.items():
                visit(value, f"{path}[{key!r}]")
        elif not isinstance(obj, (str, bytes, int, float, bool, type(None))):
            for attr, value in getattr(obj, "__dict__", {}).items():
                visit(value, f"{path}.{attr}")
            for cls in type(obj).__mro__:
                for attr in getattr(cls, "__slots__", ()):
                    if hasattr(obj, attr):
                        visit(getattr(obj, attr), f"{path}.{attr}")
            for name, func in inspect.getmembers(type(obj), inspect.isfunction):
                for cell in func.__closure__ or ():
                    visit(cell.cell_contents, f"{path}.{name}<closure>")

    visit(root, "assigner")
    return lengths


@pytest.mark.parametrize("family", ["homogeneous", "heterogeneous"])
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_assigner_state_stays_bounded(name, family):
    """No assigner container may grow with the cloudlets processed.

    Catches the exact O(n) regression class this path was cured of (the
    RBS full-horizon sample pre-draw, HBO's retained assignment buffer):
    with ``n = 50 × chunk_size``, any state scaling with processed
    cloudlets blows far past the O(num_vms + chunk_size) budget below —
    checked after *every* chunk, so growth is caught at the first chunk
    that exceeds it, not just at the end.
    """
    num_vms, chunk_size = 10, 64
    num_cloudlets = 50 * chunk_size
    make = homogeneous_stream if family == "homogeneous" else heterogeneous_stream
    stream = make(num_vms, num_cloudlets, seed=11, chunk_size=chunk_size)
    scheduler = make_streaming_scheduler(name)
    rng = spawn_rng(11, f"scheduler/{stream.name}")
    assigner = scheduler.open(stream, rng)
    budget = 2 * chunk_size + 8 * num_vms + 64
    assert budget < num_cloudlets / 10
    for offset, chunk in stream:
        assigner.assign(chunk, offset)
        oversized = {
            path: length
            for path, length in _reachable_container_lengths(assigner).items()
            if length > budget
        }
        assert not oversized, oversized


# -- no state leakage (satellite: hbo.py / rbs.py accumulator audit) ----------


@COMMON
@given(spec=dyadic_scenarios(max_vms=8, max_cloudlets=60))
@pytest.mark.parametrize("name", sorted(SCHEDULER_REGISTRY))
def test_reused_scheduler_instance_equals_fresh(name, spec):
    """schedule() must not leak accumulator state between calls.

    Pins the audit of hbo.py/rbs.py (and every other registry scheduler):
    running the same instance twice on identical contexts must reproduce
    the first assignment, and match a fresh instance.
    """
    kwargs = LIGHT_KWARGS.get(name, {})
    reused = make_scheduler(name, **kwargs)
    first = reused.schedule_checked(
        SchedulingContext.from_scenario(spec, seed=spec.seed)
    ).assignment
    second = reused.schedule_checked(
        SchedulingContext.from_scenario(spec, seed=spec.seed)
    ).assignment
    fresh = make_scheduler(name, **kwargs).schedule_checked(
        SchedulingContext.from_scenario(spec, seed=spec.seed)
    ).assignment
    assert np.array_equal(np.asarray(first), np.asarray(second))
    assert np.array_equal(np.asarray(first), np.asarray(fresh))


@COMMON
@given(spec=dyadic_scenarios(max_cloudlets=60), chunk_size=chunk_sizes())
@pytest.mark.parametrize("name", sorted(STREAMING_SCHEDULERS))
def test_streaming_open_is_stateless(name, spec, chunk_size):
    """open() must hand out fresh per-run state every time."""
    stream = ScenarioChunks.from_spec(spec, chunk_size=chunk_size)
    scheduler = make_streaming_scheduler(name)

    def run_once() -> np.ndarray:
        rng = spawn_rng(spec.seed, f"scheduler/{stream.name}")
        assigner = scheduler.open(stream, rng)
        return np.concatenate(
            [np.asarray(assigner.assign(chunk, offset)) for offset, chunk in stream]
        )

    assert np.array_equal(run_once(), run_once())
