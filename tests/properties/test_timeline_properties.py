"""Property-based determinism suite for timelines and controlled runs.

The dynamic-scenario path's safety case:

* **Compile determinism** — ``Timeline.compile`` is a pure function of
  ``(timeline, seed)``: fault plans compare equal and arrival processes
  sample bit-identically across compilations.
* **Run determinism** — a controlled online run (timeline + MAPE-K loop)
  is bit-identical across repetitions: assignments, finish times and the
  loop's action ledger.
* **Grid determinism** — ``run_sweep(engine="online")`` with a timeline
  and control produces the same records serially and under ``workers=2``.
* **Null dynamics** — passing the dynamic surface's defaults explicitly
  reproduces the plain online run byte-for-byte.

All properties run derandomised (fixed example set per test) so CI
failures reproduce locally byte-for-byte.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.control import ControlConfig
from repro.cloud.online import OnlineCloudSimulation
from repro.experiments.figures import ScenarioFamily
from repro.experiments.runner import run_sweep
from repro.schedulers.online import OnlineGreedyMCT
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.timeline import (
    Burst,
    RateChange,
    Timeline,
    VmFault,
)

COMMON = settings(max_examples=25, deadline=None, derandomize=True)
#: end-to-end DES runs are ~10ms each; keep the example budget modest.
SLOW = settings(max_examples=8, deadline=None, derandomize=True)

NUM_VMS = 4


@st.composite
def timelines(draw) -> Timeline:
    """Small valid timelines: steps + an optional burst + recovering faults."""
    entries: list = []
    for t in sorted(draw(st.lists(st.integers(1, 30), unique=True, max_size=3))):
        rate = draw(st.floats(1.0, 25.0, allow_nan=False, allow_infinity=False))
        entries.append(RateChange(at=float(t), rate=rate))
    if draw(st.booleans()):
        entries.append(
            Burst(
                at=float(draw(st.integers(1, 20))),
                count=draw(st.integers(1, 15)),
            )
        )
    for vm in draw(st.lists(st.integers(0, NUM_VMS - 1), unique=True, max_size=2)):
        entries.append(
            VmFault(
                at=float(draw(st.integers(1, 10))),
                vm_index=vm,
                downtime=float(draw(st.integers(2, 8))),
            )
        )
    base_rate = draw(st.floats(2.0, 20.0, allow_nan=False, allow_infinity=False))
    return Timeline(base_rate=base_rate, entries=tuple(entries), name="prop")


@given(timeline=timelines(), seed=st.integers(0, 2**20))
@COMMON
def test_compile_is_pure(timeline: Timeline, seed: int):
    a = timeline.compile(NUM_VMS, seed=seed)
    b = timeline.compile(NUM_VMS, seed=seed)
    assert a.fault_plan == b.fault_plan
    assert a.triggers == b.triggers
    np.testing.assert_array_equal(
        a.arrivals.sample(np.random.default_rng(0), 64),
        b.arrivals.sample(np.random.default_rng(0), 64),
    )


@given(timeline=timelines(), seed=st.integers(0, 1000))
@SLOW
def test_controlled_run_is_bit_identical(timeline: Timeline, seed: int):
    scenario = heterogeneous_scenario(NUM_VMS, 12, seed=2)
    control = ControlConfig(
        cadence=0.5,
        cooldown=1.0,
        imbalance_threshold=2.0,
        scale_up_backlog=1.0,
        standby_vms=1,
    )

    def run():
        return OnlineCloudSimulation(
            scenario, OnlineGreedyMCT(), seed=seed,
            timeline=timeline, control=control,
        ).run()

    a, b = run(), run()
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.submission_times, b.submission_times)
    np.testing.assert_array_equal(a.start_times, b.start_times)
    np.testing.assert_array_equal(a.finish_times, b.finish_times)
    assert a.makespan == b.makespan
    assert a.info["control"] == b.info["control"]


def _strip_wall_clock(record) -> dict:
    row = record.__dict__.copy()
    row.pop("scheduling_time")  # wall clock, never bit-identical
    return row


def test_online_sweep_workers_match_serial():
    timeline = Timeline(
        base_rate=10.0,
        entries=(VmFault(at="+1s", vm_index=0, downtime="4s"),),
        name="sweep-storm",
    )
    kwargs = dict(
        scenario_factory=ScenarioFamily("heterogeneous"),
        scheduler_factories={"online-greedy-mct": OnlineGreedyMCT},
        vm_counts=(4, 6),
        num_cloudlets=16,
        seeds=(0, 1),
        engine="online",
        timeline=timeline,
        control=ControlConfig(cadence=0.5, standby_vms=1),
    )
    serial = run_sweep(**kwargs)
    parallel = run_sweep(**kwargs, workers=2)
    assert len(serial) == len(parallel) == 4
    assert [_strip_wall_clock(r) for r in serial] == [
        _strip_wall_clock(r) for r in parallel
    ]


def test_null_dynamics_reproduce_plain_run():
    scenario = heterogeneous_scenario(NUM_VMS, 12, seed=2)
    plain = OnlineCloudSimulation(scenario, OnlineGreedyMCT(), seed=0).run()
    explicit = OnlineCloudSimulation(
        scenario, OnlineGreedyMCT(), seed=0,
        timeline=None, control=None, standby_vms=0,
    ).run()
    np.testing.assert_array_equal(plain.assignment, explicit.assignment)
    np.testing.assert_array_equal(plain.submission_times, explicit.submission_times)
    np.testing.assert_array_equal(plain.finish_times, explicit.finish_times)
    assert plain.makespan == explicit.makespan
    assert plain.info == explicit.info
