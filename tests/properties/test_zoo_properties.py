"""Property suite for the optimizer-kernel scheduler zoo.

GSA, PSOGSA and cuckoo-SOS all ride on :mod:`repro.optim`'s
``FitnessKernel`` + ``IterativeOptimizer``, so they inherit one shared
contract this suite pins across random scenario geometries:

* **validity** — every assignment is a full ``int`` vector in
  ``[0, num_vms)``: no cloudlet dropped, none routed off-fleet;
* **MI conservation** — grouping cloudlet lengths by assigned VM loses
  no work: per-VM MI totals sum bit-exactly to the scenario total;
* **kernel consistency + monotone trace** — the reported
  ``best_makespan_estimate`` is exactly what the fitness kernel computes
  for the returned assignment, and the convergence trace (driven by the
  optimizer's strict-``<`` incumbent rule) never increases;
* **sweep transport** — ``run_sweep(workers=2)`` ships the zoo through
  pickled :class:`~repro.experiments.scenarios.SchedulerFactory` spawn
  workers and must reproduce the serial grid bit-for-bit (wall clock
  excepted);
* **statelessness** — a reused scheduler instance replays a fresh
  instance exactly; nothing leaks between ``schedule`` calls.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import SchedulerFactory
from repro.optim import FitnessKernel
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulingContext
from repro.workloads.heterogeneous import heterogeneous_scenario

COMMON = settings(max_examples=10, deadline=None, derandomize=True)

#: name -> picklable kwargs tuple; tiny populations keep examples fast
#: while still exercising every interaction phase.
ZOO_KWARGS = {
    "gsa": (("num_agents", 4), ("max_iterations", 3)),
    "psogsa": (("num_particles", 4), ("max_iterations", 3)),
    "cuckoo-sos": (("ecosystem_size", 4), ("max_iterations", 2)),
}

zoo_names = pytest.mark.parametrize("name", sorted(ZOO_KWARGS))

#: (num_vms, num_cloudlets, seed) — VM floor of 4 satisfies the
#: heterogeneous generator's datacenter-count requirement.
points = st.tuples(
    st.integers(4, 12), st.integers(1, 60), st.integers(0, 2**16)
)


def _hetero(num_vms, num_cloudlets, seed):
    """Module-level scenario factory — picklable for spawn-pool sweeps."""
    return heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)


def _schedule(name: str, num_vms: int, num_cloudlets: int, seed: int):
    scenario = heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)
    context = SchedulingContext.from_scenario(scenario, seed=seed)
    scheduler = make_scheduler(name, **dict(ZOO_KWARGS[name]))
    return scheduler.schedule_checked(context), context


@zoo_names
@COMMON
@given(point=points)
def test_assignment_valid_and_mi_conserved(name, point):
    num_vms, num_cloudlets, seed = point
    result, context = _schedule(name, num_vms, num_cloudlets, seed)
    assignment = result.assignment
    assert assignment.shape == (num_cloudlets,)
    assert np.issubdtype(assignment.dtype, np.integer)
    assert int(assignment.min()) >= 0
    assert int(assignment.max()) < num_vms
    lengths = context.arrays.cloudlet_length
    per_vm = np.bincount(assignment, weights=lengths, minlength=num_vms)
    assert per_vm.shape == (num_vms,)
    # Conservation up to float64 summation-order noise: a dropped or
    # duplicated cloudlet shifts the total by a whole length, orders of
    # magnitude beyond this tolerance.
    assert float(per_vm.sum()) == pytest.approx(float(lengths.sum()), rel=1e-12)


@zoo_names
@COMMON
@given(point=points)
def test_kernel_consistency_and_monotone_trace(name, point):
    num_vms, num_cloudlets, seed = point
    result, context = _schedule(name, num_vms, num_cloudlets, seed)
    kernel = FitnessKernel(context.arrays, time_model="compute", max_matrix_cells=0)
    recomputed = float(kernel.batch_makespans(result.assignment[None, :])[0])
    assert result.info["best_makespan_estimate"] == recomputed
    trace = result.info["convergence"]
    fits = trace["best_fitness"]
    assert fits[-1] == recomputed
    # Strict-< incumbent rule => best-so-far never increases.
    assert all(later <= earlier for earlier, later in zip(fits, fits[1:])), fits


@zoo_names
def test_parallel_sweep_bit_equal_to_serial(name):
    sweep = dict(
        scenario_factory=_hetero,
        scheduler_factories={name: SchedulerFactory(name, kwargs=ZOO_KWARGS[name])},
        vm_counts=(4, 6),
        num_cloudlets=20,
        seeds=(0, 1),
        engine="fast",
    )
    serial = run_sweep(**sweep)
    parallel = run_sweep(**sweep, workers=2)
    assert len(parallel) == len(serial) == 4
    for a, b in zip(serial, parallel):
        # Everything but the wall clock must match bit-for-bit.
        assert (a.scheduler, a.num_vms, a.num_cloudlets, a.seed) == (
            b.scheduler, b.num_vms, b.num_cloudlets, b.seed
        )
        assert a.makespan == b.makespan
        assert a.time_imbalance == b.time_imbalance
        assert a.total_cost == b.total_cost
        assert a.events_processed == b.events_processed


@zoo_names
def test_fresh_instance_equals_reused_instance(name):
    scenario = heterogeneous_scenario(6, 30, seed=11)
    reused = make_scheduler(name, **dict(ZOO_KWARGS[name]))
    first = reused.schedule_checked(SchedulingContext.from_scenario(scenario, seed=3))
    second = reused.schedule_checked(SchedulingContext.from_scenario(scenario, seed=3))
    fresh = make_scheduler(name, **dict(ZOO_KWARGS[name])).schedule_checked(
        SchedulingContext.from_scenario(scenario, seed=3)
    )
    assert first.assignment.tobytes() == second.assignment.tobytes()
    assert first.assignment.tobytes() == fresh.assignment.tobytes()
