"""Ant Colony Optimization scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.aco import AntColonyScheduler
from repro.schedulers.base import SchedulingContext, validate_assignment
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


def small_aco(**kwargs):
    defaults = dict(num_ants=8, max_iterations=3)
    defaults.update(kwargs)
    return AntColonyScheduler(**defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_ants": 0},
            {"rho": 1.5},
            {"rho": -0.1},
            {"alpha": -1.0},
            {"q": 0.0},
            {"initial_pheromone": 0.0},
            {"max_iterations": 0},
            {"tabu": "sometimes"},
            {"pheromone": "cloud"},
            {"patience": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AntColonyScheduler(**kwargs)

    def test_matrix_cap_enforced(self, small_hetero):
        sched = small_aco(max_matrix_cells=10)
        with pytest.raises(ValueError, match="max_matrix_cells"):
            sched.schedule(ctx(small_hetero))

    def test_vm_layout_ignores_matrix_cap(self, small_hetero):
        sched = small_aco(max_matrix_cells=10, pheromone="vm")
        result = sched.schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)


class TestBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = small_aco().schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)

    def test_deterministic_given_context_seed(self, small_hetero):
        a = small_aco().schedule(ctx(small_hetero, seed=4)).assignment
        b = small_aco().schedule(ctx(small_hetero, seed=4)).assignment
        np.testing.assert_array_equal(a, b)

    def test_own_seed_decorrelates(self, small_hetero):
        a = small_aco(seed=1).schedule(ctx(small_hetero, seed=4)).assignment
        b = small_aco(seed=2).schedule(ctx(small_hetero, seed=4)).assignment
        assert not np.array_equal(a, b)

    def test_info_fields(self, small_hetero):
        result = small_aco().schedule(ctx(small_hetero))
        assert result.info["iterations"] == 3
        assert result.info["best_tour_length"] > 0
        assert result.info["pheromone_layout"] == "pair"

    def test_patience_stops_early(self, small_hetero):
        result = small_aco(max_iterations=50, patience=1).schedule(ctx(small_hetero))
        assert result.info["iterations"] < 50

    def test_prefers_fast_vms(self):
        # One VM is 8x faster; the static heuristic must send it more work.
        scenario = heterogeneous_scenario(num_vms=10, num_cloudlets=200, seed=2)
        context = ctx(scenario)
        result = small_aco().schedule(context)
        counts = np.bincount(result.assignment, minlength=10)
        mips = context.arrays.vm_mips
        fastest = int(np.argmax(mips))
        slowest = int(np.argmin(mips))
        assert counts[fastest] > counts[slowest]

    def test_beats_round_robin_makespan_estimate(self, small_hetero):
        from repro.schedulers.base import estimate_makespan

        context = ctx(small_hetero)
        arr = context.arrays
        aco = small_aco(max_iterations=5).schedule(context)
        rr = RoundRobinScheduler().schedule(ctx(small_hetero))
        mk_aco = estimate_makespan(aco.assignment, arr.cloudlet_length, arr.vm_mips)
        mk_rr = estimate_makespan(rr.assignment, arr.cloudlet_length, arr.vm_mips)
        assert mk_aco < mk_rr

    def test_tabu_pass_gives_near_uniform_counts(self, small_homog):
        result = small_aco(tabu="pass").schedule(ctx(small_homog))
        counts = np.bincount(result.assignment, minlength=10)
        # 55 cloudlets over 10 VMs with per-pass tabu: 5 or 6 each.
        assert counts.min() >= 5
        assert counts.max() <= 6

    def test_load_aware_valid_and_balanced(self, small_hetero):
        context = ctx(small_hetero)
        result = small_aco(load_aware=True).schedule(context)
        validate_assignment(result.assignment, 60, 12)

    def test_load_aware_with_tabu_pass(self, small_hetero):
        result = small_aco(load_aware=True, tabu="pass").schedule(ctx(small_hetero))
        counts = np.bincount(result.assignment, minlength=12)
        assert counts.max() - counts.min() <= 1

    def test_vm_layout_matches_pair_layout_statistically(self, small_homog):
        # On a homogeneous batch the two layouts are the same model; both
        # must produce optimal near-uniform assignments under tabu.
        for layout in ("pair", "vm"):
            result = small_aco(tabu="pass", pheromone=layout).schedule(ctx(small_homog))
            counts = np.bincount(result.assignment, minlength=10)
            assert counts.max() - counts.min() <= 1

    def test_single_vm(self):
        scenario = heterogeneous_scenario(num_vms=1, num_cloudlets=5, num_datacenters=1, seed=0)
        result = small_aco().schedule(ctx(scenario))
        np.testing.assert_array_equal(result.assignment, np.zeros(5, dtype=np.int64))
