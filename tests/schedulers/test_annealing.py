"""Simulated annealing scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.annealing import SimulatedAnnealingScheduler
from repro.schedulers.base import (
    SchedulingContext,
    estimate_makespan,
    validate_assignment,
)
from repro.schedulers.round_robin import RoundRobinScheduler


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"initial_temperature": 0.0},
            {"cooling": 1.0},
            {"cooling": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(**kwargs)


class TestBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = SimulatedAnnealingScheduler(iterations=500).schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)
        assert result.info["accepted_moves"] >= 0

    def test_improves_on_round_robin(self, small_hetero):
        context = ctx(small_hetero)
        arr = context.arrays
        sa = SimulatedAnnealingScheduler(iterations=3000).schedule(context)
        rr = RoundRobinScheduler().schedule(ctx(small_hetero))
        mk_sa = estimate_makespan(sa.assignment, arr.cloudlet_length, arr.vm_mips)
        mk_rr = estimate_makespan(rr.assignment, arr.cloudlet_length, arr.vm_mips)
        assert mk_sa < mk_rr

    def test_internal_estimate_matches_recomputation(self, small_hetero):
        context = ctx(small_hetero)
        arr = context.arrays
        result = SimulatedAnnealingScheduler(iterations=1000).schedule(context)
        recomputed = estimate_makespan(
            result.assignment, arr.cloudlet_length, arr.vm_mips
        )
        assert result.info["best_makespan_estimate"] == pytest.approx(recomputed)

    def test_more_iterations_never_worse(self, small_hetero):
        short = SimulatedAnnealingScheduler(iterations=50).schedule(ctx(small_hetero))
        long = SimulatedAnnealingScheduler(iterations=5000).schedule(ctx(small_hetero))
        assert (
            long.info["best_makespan_estimate"]
            <= short.info["best_makespan_estimate"] * 1.001
        )

    def test_deterministic(self, small_hetero):
        a = SimulatedAnnealingScheduler(iterations=300).schedule(ctx(small_hetero, 4))
        b = SimulatedAnnealingScheduler(iterations=300).schedule(ctx(small_hetero, 4))
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_registered(self):
        from repro.schedulers import SCHEDULER_REGISTRY

        assert "annealing" in SCHEDULER_REGISTRY
