"""Scheduler framework: context, result validation, estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.base import (
    SchedulingContext,
    SchedulingResult,
    estimate_makespan,
    estimated_vm_finish_times,
    validate_assignment,
)
from repro.schedulers.round_robin import RoundRobinScheduler


class TestContext:
    def test_from_scenario_sizes(self, tiny_scenario):
        ctx = SchedulingContext.from_scenario(tiny_scenario, seed=0)
        assert ctx.num_cloudlets == 8
        assert ctx.num_vms == 4
        assert ctx.num_datacenters == 2
        assert ctx.scenario_name == "tiny"

    def test_rng_is_deterministic_per_seed(self, tiny_scenario):
        a = SchedulingContext.from_scenario(tiny_scenario, seed=5).rng.random(10)
        b = SchedulingContext.from_scenario(tiny_scenario, seed=5).rng.random(10)
        np.testing.assert_array_equal(a, b)

    def test_exec_matrix_matches_rows(self, tiny_context):
        matrix = tiny_context.exec_time_matrix()
        for i in range(tiny_context.num_cloudlets):
            np.testing.assert_allclose(matrix[i], tiny_context.expected_exec_time(i))

    def test_exec_time_formula(self, tiny_context):
        arr = tiny_context.arrays
        row = tiny_context.expected_exec_time(0)
        expected = arr.cloudlet_length[0] / (arr.vm_pes * arr.vm_mips) + (
            arr.cloudlet_file_size[0] / arr.vm_bw
        )
        np.testing.assert_allclose(row, expected)


class TestValidateAssignment:
    def test_valid_passes(self):
        validate_assignment(np.array([0, 1, 2]), num_cloudlets=3, num_vms=3)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            validate_assignment(np.array([0, 1]), num_cloudlets=3, num_vms=3)

    def test_float_dtype_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            validate_assignment(np.array([0.0, 1.0]), num_cloudlets=2, num_vms=2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="in \\[0"):
            validate_assignment(np.array([0, 5]), num_cloudlets=2, num_vms=2)
        with pytest.raises(ValueError):
            validate_assignment(np.array([-1, 0]), num_cloudlets=2, num_vms=2)


class TestSchedulingResult:
    def test_coerces_to_int64(self):
        r = SchedulingResult(assignment=[0, 1, 0], scheduler_name="x")
        assert r.assignment.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SchedulingResult(assignment=np.zeros((2, 2), dtype=int), scheduler_name="x")


class TestScheduleChecked:
    def test_checked_passes_for_round_robin(self, tiny_context):
        result = RoundRobinScheduler().schedule_checked(tiny_context)
        assert result.scheduler_name == "basetest"

    def test_checked_rejects_mislabeled(self, tiny_context):
        class Liar(RoundRobinScheduler):
            def schedule(self, context):
                r = super().schedule(context)
                r.scheduler_name = "someone-else"
                return r

        with pytest.raises(ValueError, match="labelled"):
            Liar().schedule_checked(tiny_context)


class TestEstimators:
    def test_estimated_vm_finish_times(self):
        totals = estimated_vm_finish_times(
            np.array([0, 0, 1]), np.array([1.0, 2.0, 5.0]), num_vms=3
        )
        np.testing.assert_allclose(totals, [3.0, 5.0, 0.0])

    def test_estimate_makespan_single_pe(self):
        mk = estimate_makespan(
            np.array([0, 1, 1]),
            lengths=np.array([100.0, 100.0, 300.0]),
            vm_mips=np.array([100.0, 200.0]),
        )
        assert mk == pytest.approx(2.0)  # vm1: 400/200

    def test_estimate_makespan_respects_pes(self):
        mk = estimate_makespan(
            np.array([0, 0]),
            lengths=np.array([100.0, 100.0]),
            vm_mips=np.array([100.0]),
            vm_pes=np.array([2]),
        )
        assert mk == pytest.approx(1.0)

    def test_bincount_accumulation_equals_add_at_reference(self):
        """The bincount fast path must match np.add.at bit for bit.

        Both sum weights left-to-right per bucket, so the refactor from
        buffered fancy-index accumulation pins exact equality — any
        reordering of the summation would break golden-seed metrics.
        """
        rng = np.random.default_rng(42)
        for num_vms in (1, 3, 17):
            assignment = rng.integers(0, num_vms, size=500)
            exec_times = rng.uniform(0.1, 1e6, size=500)
            reference = np.zeros(num_vms)
            np.add.at(reference, assignment, exec_times)
            np.testing.assert_array_equal(
                estimated_vm_finish_times(assignment, exec_times, num_vms), reference
            )
            mips = rng.uniform(100.0, 5000.0, size=num_vms)
            assert estimate_makespan(assignment, exec_times, mips) == (
                reference / mips
            ).max()

    def test_estimated_vm_finish_times_empty_vm_stays_zero(self):
        totals = estimated_vm_finish_times(
            np.array([2, 2]), np.array([1.0, 2.0]), num_vms=5
        )
        np.testing.assert_array_equal(totals, [0.0, 0.0, 3.0, 0.0, 0.0])
