"""MET and OLB classic heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.base import SchedulingContext, validate_assignment
from repro.schedulers.classics import (
    MinimumExecutionTimeScheduler,
    OpportunisticLoadBalancingScheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestMet:
    def test_everything_on_fastest_vm_with_uniform_bw(self, small_hetero):
        context = ctx(small_hetero)
        result = MinimumExecutionTimeScheduler().schedule(context)
        validate_assignment(result.assignment, 60, 12)
        fastest = int(np.argmax(context.arrays.vm_mips))
        assert (result.assignment == fastest).all()

    def test_met_has_extreme_imbalance(self, small_hetero):
        from repro.cloud.fast import FastSimulation
        from repro.schedulers.round_robin import RoundRobinScheduler

        met = FastSimulation(small_hetero, MinimumExecutionTimeScheduler(), seed=0).run()
        rr = FastSimulation(small_hetero, RoundRobinScheduler(), seed=0).run()
        # One VM does all the work: makespan far above balanced placement.
        assert met.makespan > rr.makespan


class TestOlb:
    def test_balances_expected_busy_time(self, small_hetero):
        context = ctx(small_hetero)
        result = OpportunisticLoadBalancingScheduler().schedule(context)
        validate_assignment(result.assignment, 60, 12)
        arr = context.arrays
        busy = np.zeros(12)
        np.add.at(
            busy,
            result.assignment,
            arr.cloudlet_length / arr.vm_mips[result.assignment],
        )
        assert busy.max() / busy.min() < 3.0

    def test_uses_every_vm(self, small_hetero):
        result = OpportunisticLoadBalancingScheduler().schedule(ctx(small_hetero))
        assert len(np.unique(result.assignment)) == 12

    def test_olb_between_met_and_greedy(self):
        from repro.cloud.fast import FastSimulation
        from repro.schedulers.greedy import GreedyMinCompletionScheduler

        scenario = heterogeneous_scenario(10, 200, seed=8)
        olb = FastSimulation(scenario, OpportunisticLoadBalancingScheduler(), seed=0).run()
        met = FastSimulation(scenario, MinimumExecutionTimeScheduler(), seed=0).run()
        greedy = FastSimulation(scenario, GreedyMinCompletionScheduler(), seed=0).run()
        assert greedy.makespan <= olb.makespan <= met.makespan
