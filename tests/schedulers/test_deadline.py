"""Deadline-aware EDF scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.simulation import CloudSimulation
from repro.metrics.sla import relative_deadlines, sla_report
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.base import SchedulingContext, validate_assignment
from repro.schedulers.deadline import DeadlineAwareScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestValidation:
    def test_bad_slack_rejected(self):
        with pytest.raises(ValueError):
            DeadlineAwareScheduler(slack_factor=0.0)

    def test_deadline_shape_enforced(self, small_hetero):
        sched = DeadlineAwareScheduler(deadlines=np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="shape"):
            sched.schedule(ctx(small_hetero))


class TestBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = DeadlineAwareScheduler().schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)
        assert result.info["synthesized_deadlines"]

    def test_explicit_deadlines_used(self, small_hetero):
        deadlines = np.full(60, 1e9)
        result = DeadlineAwareScheduler(deadlines=deadlines).schedule(ctx(small_hetero))
        assert result.info["predicted_misses"] == 0
        assert not result.info["synthesized_deadlines"]

    def test_tight_deadlines_predict_misses(self, small_hetero):
        result = DeadlineAwareScheduler(deadlines=np.full(60, 1e-6)).schedule(
            ctx(small_hetero)
        )
        assert result.info["predicted_misses"] > 0

    def test_less_tardiness_than_round_robin(self):
        # With deadlines proportional to length, violation *counts* are
        # noise-level between EDF-MCT and round-robin, but the tardiness
        # aggregates — what an SLA penalises — clearly favour EDF-MCT.
        scenario = heterogeneous_scenario(num_vms=10, num_cloudlets=120, seed=11)
        arr = scenario.arrays()
        deadlines = relative_deadlines(
            arr.cloudlet_length, float(arr.vm_mips.mean()), slack_factor=3.0
        )
        edf = CloudSimulation(
            scenario, DeadlineAwareScheduler(deadlines=deadlines), seed=0
        ).run()
        rr = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        edf_report = sla_report(edf.finish_times, deadlines)
        rr_report = sla_report(rr.finish_times, deadlines)
        assert edf_report.mean_tardiness < rr_report.mean_tardiness
        assert edf_report.max_tardiness < rr_report.max_tardiness
        assert edf_report.violated <= rr_report.violated + 3

    def test_deterministic(self, small_hetero):
        a = DeadlineAwareScheduler().schedule(ctx(small_hetero)).assignment
        b = DeadlineAwareScheduler().schedule(ctx(small_hetero)).assignment
        np.testing.assert_array_equal(a, b)

    def test_registered(self):
        from repro.schedulers import make_scheduler

        assert make_scheduler("deadline-edf").name == "deadline-edf"
