"""PSO and GA schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.base import (
    SchedulingContext,
    estimate_makespan,
    validate_assignment,
)
from repro.schedulers.ga import GeneticAlgorithmScheduler
from repro.schedulers.pso import ParticleSwarmScheduler
from repro.schedulers.random_assign import RandomScheduler


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestPsoValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_particles": 1},
            {"max_iterations": 0},
            {"inertia": 1.5},
            {"cognitive": -1.0},
            {"cognitive": 0.0, "social": 0.0},
            {"mutation_rate": 2.0},
            {"cost_weight": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ParticleSwarmScheduler(**kwargs)


class TestPsoBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = ParticleSwarmScheduler(num_particles=10, max_iterations=10).schedule(
            ctx(small_hetero)
        )
        validate_assignment(result.assignment, 60, 12)
        assert result.info["best_fitness"] > 0

    def test_beats_random_baseline(self, small_hetero):
        context = ctx(small_hetero)
        arr = context.arrays
        pso = ParticleSwarmScheduler(num_particles=20, max_iterations=30).schedule(context)
        rnd = RandomScheduler().schedule(ctx(small_hetero, seed=99))
        assert estimate_makespan(
            pso.assignment, arr.cloudlet_length, arr.vm_mips
        ) < estimate_makespan(rnd.assignment, arr.cloudlet_length, arr.vm_mips)

    def test_cost_weight_reduces_cost(self, small_hetero):
        from repro.cloud.simulation import compute_batch_costs

        plain = ParticleSwarmScheduler(
            num_particles=20, max_iterations=30, cost_weight=0.0
        ).schedule(ctx(small_hetero))
        costy = ParticleSwarmScheduler(
            num_particles=20, max_iterations=30, cost_weight=5.0
        ).schedule(ctx(small_hetero))
        cost_plain = compute_batch_costs(small_hetero, plain.assignment).sum()
        cost_costy = compute_batch_costs(small_hetero, costy.assignment).sum()
        assert cost_costy <= cost_plain * 1.02

    def test_deterministic(self, small_hetero):
        a = ParticleSwarmScheduler(num_particles=8, max_iterations=5).schedule(
            ctx(small_hetero, 3)
        )
        b = ParticleSwarmScheduler(num_particles=8, max_iterations=5).schedule(
            ctx(small_hetero, 3)
        )
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestGaValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 3},  # odd
            {"population_size": 0},
            {"generations": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"tournament_size": 0},
            {"elitism": 40},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneticAlgorithmScheduler(**kwargs)


class TestGaBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = GeneticAlgorithmScheduler(population_size=10, generations=10).schedule(
            ctx(small_hetero)
        )
        validate_assignment(result.assignment, 60, 12)

    def test_fitness_improves_over_generations(self, small_hetero):
        context = ctx(small_hetero)
        arr = context.arrays
        short = GeneticAlgorithmScheduler(population_size=20, generations=1).schedule(
            ctx(small_hetero, 5)
        )
        long = GeneticAlgorithmScheduler(population_size=20, generations=60).schedule(
            ctx(small_hetero, 5)
        )
        assert long.info["best_makespan_estimate"] <= short.info["best_makespan_estimate"]

    def test_beats_random_baseline(self, small_hetero):
        context = ctx(small_hetero)
        arr = context.arrays
        ga = GeneticAlgorithmScheduler(population_size=20, generations=40).schedule(context)
        rnd = RandomScheduler().schedule(ctx(small_hetero, seed=99))
        assert estimate_makespan(
            ga.assignment, arr.cloudlet_length, arr.vm_mips
        ) < estimate_makespan(rnd.assignment, arr.cloudlet_length, arr.vm_mips)

    def test_deterministic(self, small_hetero):
        a = GeneticAlgorithmScheduler(population_size=8, generations=5).schedule(
            ctx(small_hetero, 3)
        )
        b = GeneticAlgorithmScheduler(population_size=8, generations=5).schedule(
            ctx(small_hetero, 3)
        )
        np.testing.assert_array_equal(a.assignment, b.assignment)
