"""Honey Bee Optimization scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.base import SchedulingContext, validate_assignment
from repro.schedulers.hbo import HoneyBeeScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestValidation:
    @pytest.mark.parametrize("fac", [0.0, -0.5, 1.5])
    def test_bad_faclb_rejected(self, fac):
        with pytest.raises(ValueError, match="load_balance_factor"):
            HoneyBeeScheduler(load_balance_factor=fac)

    def test_negative_bias_rejected(self):
        with pytest.raises(ValueError, match="scout_time_bias"):
            HoneyBeeScheduler(scout_time_bias=-0.1)


class TestBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = HoneyBeeScheduler().schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)

    def test_cheapest_datacenter_receives_most_tasks(self, small_hetero):
        context = ctx(small_hetero)
        result = HoneyBeeScheduler().schedule(context)
        per_dc = np.asarray(result.info["assigned_per_dc"])
        unit_cost = np.asarray(result.info["dc_unit_cost"])
        assert per_dc[np.argmin(unit_cost)] == per_dc.max()

    def test_faclb_cap_is_honored(self, small_hetero):
        context = ctx(small_hetero)
        result = HoneyBeeScheduler(load_balance_factor=0.4).schedule(context)
        per_dc = np.asarray(result.info["assigned_per_dc"])
        cap = result.info["cap_per_dc"]
        assert cap == int(np.ceil(0.4 * 60))
        assert (per_dc <= cap).all()

    def test_faclb_one_routes_everything_to_cheapest(self, small_hetero):
        context = ctx(small_hetero)
        result = HoneyBeeScheduler(load_balance_factor=1.0).schedule(context)
        per_dc = np.asarray(result.info["assigned_per_dc"])
        unit_cost = np.asarray(result.info["dc_unit_cost"])
        assert per_dc[np.argmin(unit_cost)] == 60
        assert result.info["spills"] == 0

    def test_smaller_faclb_spills_more(self, small_hetero):
        low = HoneyBeeScheduler(load_balance_factor=0.3).schedule(ctx(small_hetero))
        high = HoneyBeeScheduler(load_balance_factor=0.9).schedule(ctx(small_hetero))
        assert low.info["spills"] > high.info["spills"]

    def test_cheaper_than_round_robin(self, small_hetero):
        from repro.cloud.simulation import compute_batch_costs
        from repro.schedulers.round_robin import RoundRobinScheduler

        hbo = HoneyBeeScheduler().schedule(ctx(small_hetero))
        rr = RoundRobinScheduler().schedule(ctx(small_hetero))
        cost_hbo = compute_batch_costs(small_hetero, hbo.assignment).sum()
        cost_rr = compute_batch_costs(small_hetero, rr.assignment).sum()
        assert cost_hbo < cost_rr

    def test_homogeneous_balances_within_datacenters(self, small_homog):
        result = HoneyBeeScheduler().schedule(ctx(small_homog))
        counts = np.bincount(result.assignment, minlength=10)
        arr = small_homog.arrays()
        # Within each datacenter the heap path keeps counts within 1.
        for dc in range(small_homog.num_datacenters):
            members = np.flatnonzero(arr.vm_datacenter == dc)
            if counts[members].sum():
                assert counts[members].max() - counts[members].min() <= 1

    def test_deterministic(self, small_hetero):
        a = HoneyBeeScheduler().schedule(ctx(small_hetero)).assignment
        b = HoneyBeeScheduler().schedule(ctx(small_hetero)).assignment
        np.testing.assert_array_equal(a, b)

    def test_completion_bias_improves_makespan_estimate(self):
        # On a batch with real VM-speed spread, completion-greedy scouts
        # must beat pure-backlog scouts on estimated makespan.
        from repro.schedulers.base import estimate_makespan

        scenario = heterogeneous_scenario(num_vms=40, num_cloudlets=400, seed=6)
        arr = scenario.arrays()
        plain = HoneyBeeScheduler(scout_time_bias=0.0).schedule(ctx(scenario))
        biased = HoneyBeeScheduler(scout_time_bias=1.0).schedule(ctx(scenario))
        mk_plain = estimate_makespan(plain.assignment, arr.cloudlet_length, arr.vm_mips)
        mk_biased = estimate_makespan(biased.assignment, arr.cloudlet_length, arr.vm_mips)
        assert mk_biased < mk_plain

    def test_single_datacenter(self):
        scenario = heterogeneous_scenario(
            num_vms=6, num_cloudlets=30, num_datacenters=1, seed=1
        )
        result = HoneyBeeScheduler().schedule(ctx(scenario))
        validate_assignment(result.assignment, 30, 6)

    def test_more_groups_than_cloudlets(self):
        scenario = heterogeneous_scenario(
            num_vms=8, num_cloudlets=2, num_datacenters=4, seed=1
        )
        result = HoneyBeeScheduler().schedule(ctx(scenario))
        validate_assignment(result.assignment, 2, 8)
