"""Max-Min, Min-Min, greedy MCT and random baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.base import (
    SchedulingContext,
    estimate_makespan,
    validate_assignment,
)
from repro.schedulers.greedy import GreedyMinCompletionScheduler
from repro.schedulers.maxmin import MaxMinScheduler, MinMinScheduler
from repro.schedulers.random_assign import RandomScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


def reference_greedy(lengths, capacity):
    """Naive reference implementation of minimum-completion-time."""
    ready = np.zeros_like(capacity)
    out = []
    for ln in lengths:
        completion = ready + ln / capacity
        j = int(np.argmin(completion))
        out.append(j)
        ready[j] = completion[j]
    return np.array(out), ready


def reference_maxmin(lengths, capacity, select_max):
    """Textbook O(n^2 m) Max-Min / Min-Min."""
    n = len(lengths)
    ready = np.zeros_like(capacity)
    assignment = np.full(n, -1)
    remaining = set(range(n))
    while remaining:
        best_i, best_j, best_t = None, None, None
        for i in remaining:
            completion = ready + lengths[i] / capacity
            j = int(np.argmin(completion))
            t = completion[j]
            better = (
                best_t is None
                or (select_max and t > best_t)
                or (not select_max and t < best_t)
            )
            if better:
                best_i, best_j, best_t = i, j, t
        assignment[best_i] = best_j
        ready[best_j] += lengths[best_i] / capacity[best_j]
        remaining.discard(best_i)
    return assignment, ready


class TestGreedy:
    def test_matches_reference(self, small_hetero):
        context = ctx(small_hetero)
        arr = context.arrays
        result = GreedyMinCompletionScheduler().schedule(context)
        expected, ready = reference_greedy(
            arr.cloudlet_length, arr.vm_mips * arr.vm_pes
        )
        np.testing.assert_array_equal(result.assignment, expected)
        assert result.info["estimated_makespan"] == pytest.approx(ready.max())

    def test_beats_round_robin(self, small_hetero):
        from repro.schedulers.round_robin import RoundRobinScheduler

        context = ctx(small_hetero)
        arr = context.arrays
        greedy = GreedyMinCompletionScheduler().schedule(context)
        rr = RoundRobinScheduler().schedule(context)
        assert estimate_makespan(
            greedy.assignment, arr.cloudlet_length, arr.vm_mips
        ) < estimate_makespan(rr.assignment, arr.cloudlet_length, arr.vm_mips)


class TestMaxMinMinMin:
    @pytest.mark.parametrize(
        "scheduler_cls,select_max",
        [(MaxMinScheduler, True), (MinMinScheduler, False)],
    )
    def test_matches_textbook_reference(self, scheduler_cls, select_max):
        scenario = heterogeneous_scenario(
            num_vms=5, num_cloudlets=18, num_datacenters=2, seed=8
        )
        context = ctx(scenario)
        arr = context.arrays
        result = scheduler_cls().schedule(context)
        expected, ready = reference_maxmin(
            arr.cloudlet_length, arr.vm_mips * arr.vm_pes, select_max
        )
        np.testing.assert_array_equal(result.assignment, expected)
        assert result.info["estimated_makespan"] == pytest.approx(ready.max())

    def test_names(self):
        assert MaxMinScheduler().name == "maxmin"
        assert MinMinScheduler().name == "minmin"

    def test_maxmin_not_worse_than_minmin_usually(self, small_hetero):
        # Max-Min schedules big tasks first, which typically yields a lower
        # makespan than Min-Min on spread-out workloads.
        context = ctx(small_hetero)
        arr = context.arrays
        mm = MaxMinScheduler().schedule(context)
        nn = MinMinScheduler().schedule(ctx(small_hetero))
        mk_max = estimate_makespan(mm.assignment, arr.cloudlet_length, arr.vm_mips)
        mk_min = estimate_makespan(nn.assignment, arr.cloudlet_length, arr.vm_mips)
        assert mk_max <= mk_min * 1.05


class TestRandom:
    def test_valid_and_deterministic(self, small_hetero):
        a = RandomScheduler().schedule(ctx(small_hetero, 7))
        b = RandomScheduler().schedule(ctx(small_hetero, 7))
        validate_assignment(a.assignment, 60, 12)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_uses_many_vms(self):
        scenario = heterogeneous_scenario(num_vms=10, num_cloudlets=500, seed=0)
        result = RandomScheduler().schedule(ctx(scenario))
        assert len(np.unique(result.assignment)) == 10
