"""Priority-cost scheduler and the future-work hybrid dispatcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.simulation import compute_batch_costs
from repro.schedulers.base import SchedulingContext, validate_assignment
from repro.schedulers.hybrid import HybridObjective, HybridScheduler
from repro.schedulers.priority import PriorityCostScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestPriorityCost:
    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityCostScheduler(load_weight=-1.0)
        with pytest.raises(ValueError):
            PriorityCostScheduler(bands=0)

    def test_assignment_valid(self, small_hetero):
        result = PriorityCostScheduler().schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)
        assert result.info["bands"] == 3

    def test_cheaper_than_round_robin(self, small_hetero):
        from repro.schedulers.round_robin import RoundRobinScheduler

        pri = PriorityCostScheduler().schedule(ctx(small_hetero))
        rr = RoundRobinScheduler().schedule(ctx(small_hetero))
        assert compute_batch_costs(small_hetero, pri.assignment).sum() < (
            compute_batch_costs(small_hetero, rr.assignment).sum()
        )

    def test_single_band(self, small_hetero):
        result = PriorityCostScheduler(bands=1).schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)


class TestHybridDispatch:
    def test_explicit_objectives(self, small_hetero):
        context = ctx(small_hetero)
        assert (
            HybridScheduler(objective=HybridObjective.PERFORMANCE)
            .choose_module(context)
            .name
            == "antcolony"
        )
        assert (
            HybridScheduler(objective="cost").choose_module(context).name == "honeybee"
        )
        assert (
            HybridScheduler(objective="balance").choose_module(context).name == "rbs"
        )

    def test_auto_homogeneous_picks_basetest(self, small_homog):
        context = ctx(small_homog)
        assert HybridScheduler().choose_module(context).name == "basetest"

    def test_auto_heterogeneous_with_cost_spread_picks_hbo(self, small_hetero):
        # Table VII ranges give a composite spread well above 2x.
        context = ctx(small_hetero)
        assert HybridScheduler().choose_module(context).name == "honeybee"

    def test_auto_heterogeneous_flat_prices_picks_aco(self):
        scenario = heterogeneous_scenario(num_vms=8, num_cloudlets=30, seed=3)
        # Force identical prices across datacenters.
        import dataclasses

        dc0 = scenario.datacenters[0]
        scenario = dataclasses.replace(
            scenario, datacenters=tuple(dc0 for _ in scenario.datacenters)
        )
        context = ctx(scenario)
        assert HybridScheduler().choose_module(context).name == "antcolony"

    def test_schedule_labels_result_as_hybrid(self, small_hetero):
        result = HybridScheduler(objective="cost").schedule(ctx(small_hetero))
        assert result.scheduler_name == "hybrid"
        assert result.info["delegated_to"] == "honeybee"
        assert result.info["objective"] == "cost"
        validate_assignment(result.assignment, 60, 12)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridScheduler(heterogeneity_threshold=-0.1)
        with pytest.raises(ValueError):
            HybridScheduler(cost_spread_threshold=0.5)
        with pytest.raises(ValueError):
            HybridScheduler(objective="profit")

    def test_injected_modules_are_used(self, small_hetero):
        from repro.schedulers.aco import AntColonyScheduler

        custom = AntColonyScheduler(num_ants=2, max_iterations=1)
        hybrid = HybridScheduler(objective="performance", aco=custom)
        assert hybrid.choose_module(ctx(small_hetero)) is custom


class TestRegistry:
    def test_all_registered_schedulers_instantiate_and_run(self, small_hetero):
        from repro.schedulers import SCHEDULER_REGISTRY, make_scheduler

        context_seed = 0
        for name in SCHEDULER_REGISTRY:
            sched = make_scheduler(name)
            result = sched.schedule_checked(ctx(small_hetero, context_seed))
            assert result.scheduler_name == name

    def test_make_scheduler_unknown_name(self):
        from repro.schedulers import make_scheduler

        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("quantum-annealer")

    def test_make_scheduler_forwards_kwargs(self):
        from repro.schedulers import make_scheduler

        sched = make_scheduler("antcolony", num_ants=3)
        assert sched.num_ants == 3

    def test_paper_schedulers_subset_of_registry(self):
        from repro.schedulers import PAPER_SCHEDULERS, SCHEDULER_REGISTRY

        assert set(PAPER_SCHEDULERS) <= set(SCHEDULER_REGISTRY)
