"""Random Biased Sampling scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.base import SchedulingContext, validate_assignment
from repro.schedulers.rbs import RandomBiasedSamplingScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


def ctx(scenario, seed=0):
    return SchedulingContext.from_scenario(scenario, seed=seed)


class TestValidation:
    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError, match="num_groups"):
            RandomBiasedSamplingScheduler(num_groups=0)


class TestBehaviour:
    def test_assignment_valid(self, small_hetero):
        result = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero))
        validate_assignment(result.assignment, 60, 12)

    def test_default_group_count(self, small_hetero):
        result = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero))
        assert result.info["num_groups"] == 4

    def test_groups_clipped_to_vm_count(self):
        scenario = heterogeneous_scenario(
            num_vms=2, num_cloudlets=10, num_datacenters=2, seed=0
        )
        result = RandomBiasedSamplingScheduler(num_groups=10).schedule(ctx(scenario))
        assert result.info["num_groups"] == 2

    def test_single_group_uses_all_vms_cyclically(self):
        scenario = heterogeneous_scenario(
            num_vms=4, num_cloudlets=16, num_datacenters=2, seed=0
        )
        result = RandomBiasedSamplingScheduler(num_groups=1).schedule(ctx(scenario))
        counts = np.bincount(result.assignment, minlength=4)
        np.testing.assert_array_equal(counts, [4, 4, 4, 4])

    def test_deterministic_per_seed(self, small_hetero):
        a = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero, 3)).assignment
        b = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero, 3)).assignment
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_assignment(self, small_hetero):
        a = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero, 1)).assignment
        b = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero, 2)).assignment
        assert not np.array_equal(a, b)

    def test_walk_stats_reported(self, small_hetero):
        result = RandomBiasedSamplingScheduler().schedule(ctx(small_hetero))
        assert result.info["mean_walk_length"] >= 0.0

    def test_load_is_roughly_balanced(self):
        # NID replenishment bounds per-VM counts: every round hands each VM
        # at most one task, so counts differ by at most the round spill.
        scenario = heterogeneous_scenario(
            num_vms=10, num_cloudlets=200, num_datacenters=2, seed=4
        )
        result = RandomBiasedSamplingScheduler().schedule(ctx(scenario))
        counts = np.bincount(result.assignment, minlength=10)
        assert counts.max() - counts.min() <= 4

    @settings(max_examples=20, deadline=None)
    @given(
        num_vms=st.integers(min_value=1, max_value=20),
        num_cloudlets=st.integers(min_value=1, max_value=80),
        groups=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_property_every_assignment_complete(self, num_vms, num_cloudlets, groups, seed):
        scenario = heterogeneous_scenario(
            num_vms=num_vms,
            num_cloudlets=num_cloudlets,
            num_datacenters=min(2, num_vms),
            seed=seed,
        )
        result = RandomBiasedSamplingScheduler(num_groups=groups).schedule(
            ctx(scenario, seed)
        )
        validate_assignment(result.assignment, num_cloudlets, num_vms)
