"""Base Test scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.round_robin import RoundRobinScheduler


class TestRoundRobin:
    def test_cyclic_pattern(self, tiny_context):
        result = RoundRobinScheduler().schedule(tiny_context)
        np.testing.assert_array_equal(result.assignment, np.arange(8) % 4)

    def test_start_offset(self, tiny_context):
        result = RoundRobinScheduler(start_offset=2).schedule(tiny_context)
        np.testing.assert_array_equal(result.assignment, (np.arange(8) + 2) % 4)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(start_offset=-1)

    def test_name(self):
        assert RoundRobinScheduler().name == "basetest"

    def test_counts_differ_by_at_most_one(self, small_hetero):
        from repro.schedulers.base import SchedulingContext

        ctx = SchedulingContext.from_scenario(small_hetero, seed=0)
        result = RoundRobinScheduler().schedule(ctx)
        counts = np.bincount(result.assignment, minlength=ctx.num_vms)
        assert counts.max() - counts.min() <= 1
