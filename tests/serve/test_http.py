"""HTTP façade tests: routes, keep-alive, and the 4xx error taxonomy.

The recurring pattern — send something malformed, then prove a
well-formed request on the *same* connection (or a fresh one) still
succeeds — pins the satellite requirement that no client input can crash
the server loop.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.serve import FleetSpec, SchedulerService, start_http_server


@pytest.fixture()
def server():
    service = SchedulerService()
    service.add_fleet(FleetSpec(name="edge", num_vms=10, scheduler="greedy-mct"))
    service.add_fleet(FleetSpec(name="rr", num_vms=4, scheduler="basetest"))
    with start_http_server(service) as handle:
        yield service, handle


def raw_request(handle, data: bytes) -> tuple[int, dict]:
    with socket.create_connection((handle.host, handle.port), timeout=5) as sock:
        sock.sendall(data)
        return _read_response(sock)


def _read_response(sock) -> tuple[int, dict]:
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError(f"connection closed mid-response: {buf!r}")
        buf += chunk
    head, _, rest = buf.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value)
    while len(rest) < length:
        rest += sock.recv(65536)
    return status, json.loads(rest[:length])


def http(handle, method: str, path: str, payload=None) -> tuple[int, dict]:
    body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode()
    return raw_request(handle, head + body)


class TestRoutes:
    def test_healthz(self, server):
        _, handle = server
        status, payload = http(handle, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "fleets": ["edge", "rr"]}

    def test_fleet_listing_and_detail(self, server):
        _, handle = server
        status, payload = http(handle, "GET", "/v1/fleets")
        assert status == 200
        assert [f["name"] for f in payload["fleets"]] == ["edge", "rr"]
        status, detail = http(handle, "GET", "/v1/fleets/edge")
        assert status == 200
        assert detail["scheduler"] == "greedy-mct"
        assert detail["manifest"]["engine"] == "serve"
        assert detail["fingerprint"]

    def test_submit_roundtrip_matches_inprocess(self, server):
        service, handle = server
        status, payload = http(
            handle, "POST", "/v1/fleets/rr/submit", {"cloudlets": [10.0, 20.0, 30.0]}
        )
        assert status == 200
        assert payload["offset"] == 0
        assert payload["count"] == 3
        assert payload["placements"] == [0, 1, 2]
        # The in-process view advanced identically.
        assert service.fleet("rr").offset == 3

    def test_keep_alive_serves_multiple_requests(self, server):
        _, handle = server
        body = json.dumps({"count": 2, "length": 5.0}).encode()
        one = (
            f"POST /v1/fleets/rr/submit HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        with socket.create_connection((handle.host, handle.port), timeout=5) as sock:
            offsets = []
            for _ in range(3):
                sock.sendall(one)
                status, payload = _read_response(sock)
                assert status == 200
                offsets.append(payload["offset"])
        assert offsets == [0, 2, 4]

    def test_not_found_and_method_not_allowed(self, server):
        _, handle = server
        assert http(handle, "GET", "/nope")[0] == 404
        assert http(handle, "POST", "/healthz")[0] == 405
        assert http(handle, "GET", "/v1/fleets/edge/submit")[0] == 405
        status, payload = http(handle, "POST", "/v1/fleets/ghost/submit", {"count": 1, "length": 1.0})
        assert status == 404
        assert payload["error"] == "unknown-fleet"


class TestMalformedInputsNeverKillTheLoop:
    def test_bad_json_then_good_request_same_connection(self, server):
        _, handle = server
        bad = b"{not json"
        head = (
            f"POST /v1/fleets/edge/submit HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(bad)}\r\n\r\n"
        ).encode()
        good_body = json.dumps({"count": 1, "length": 7.0}).encode()
        good = (
            f"POST /v1/fleets/edge/submit HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(good_body)}\r\n\r\n"
        ).encode() + good_body
        with socket.create_connection((handle.host, handle.port), timeout=5) as sock:
            sock.sendall(head + bad)
            status, payload = _read_response(sock)
            assert status == 400
            assert payload["error"] == "bad-json"
            sock.sendall(good)
            status, payload = _read_response(sock)
            assert status == 200
            assert payload["offset"] == 0

    @pytest.mark.parametrize(
        "payload,status,code",
        [
            ({"cloudlets": []}, 400, "empty-batch"),
            ({"cloudlets": [-1.0]}, 400, "bad-request"),
            ({"count": 0, "length": 1.0}, 400, "bad-request"),
            ({"count": 10**8, "length": 1.0}, 413, "batch-too-large"),
            ([1, 2, 3], 400, "bad-request"),
        ],
    )
    def test_malformed_submissions_get_clean_4xx(self, server, payload, status, code):
        _, handle = server
        got_status, got = http(handle, "POST", "/v1/fleets/edge/submit", payload)
        assert got_status == status
        assert got["error"] == code
        # And the server still answers afterwards.
        assert http(handle, "GET", "/healthz")[0] == 200

    def test_garbage_request_line(self, server):
        _, handle = server
        status, payload = raw_request(handle, b"NONSENSE\r\n\r\n")
        assert status == 400
        assert payload["error"] == "bad-http"
        assert http(handle, "GET", "/healthz")[0] == 200

    def test_oversized_body_is_413(self, server):
        _, handle = server
        head = (
            "POST /v1/fleets/edge/submit HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {64 * 2**20}\r\n\r\n"
        ).encode()
        status, payload = raw_request(handle, head)
        assert status == 413
        assert payload["error"] == "body-too-large"
        assert http(handle, "GET", "/healthz")[0] == 200

    def test_rejected_batches_do_not_advance_admission(self, server):
        service, handle = server
        http(handle, "POST", "/v1/fleets/edge/submit", {"cloudlets": []})
        http(handle, "POST", "/v1/fleets/edge/submit", {"cloudlets": [0.0]})
        status, payload = http(
            handle, "POST", "/v1/fleets/edge/submit", {"count": 1, "length": 1.0}
        )
        assert status == 200
        assert payload["offset"] == 0
        assert service.fleet("edge").requests == 1
