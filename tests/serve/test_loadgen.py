"""Load-generator tests: trace determinism, SLO gates, end-to-end replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    FleetSpec,
    LoadReport,
    SchedulerService,
    SloSpec,
    TraceSpec,
    assert_bit_identical,
    build_trace,
    replay,
    replay_inprocess,
    start_http_server,
)


class TestTrace:
    def test_same_spec_same_trace(self):
        spec = TraceSpec(requests=200, rate=1000.0, seed=42, bursts=((0.05, 20),))
        a, b = build_trace(spec), build_trace(spec)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.offsets, b.offsets)
        np.testing.assert_array_equal(a.lengths, b.lengths)

    def test_seed_changes_the_trace(self):
        a = build_trace(TraceSpec(requests=100, seed=0))
        b = build_trace(TraceSpec(requests=100, seed=1))
        assert not np.array_equal(a.lengths[: min(a.num_cloudlets, b.num_cloudlets)],
                                  b.lengths[: min(a.num_cloudlets, b.num_cloudlets)])

    def test_schedule_is_nondecreasing_and_batches_in_range(self):
        trace = build_trace(TraceSpec(requests=500, rate=2000.0, seed=3, batch_low=2, batch_high=5))
        assert (np.diff(trace.times) >= 0).all()
        sizes = np.diff(trace.offsets)
        assert sizes.min() >= 2 and sizes.max() <= 5
        assert trace.lengths.min() >= trace.spec.length_low
        assert trace.lengths.max() < trace.spec.length_high

    def test_bursts_inject_extra_arrivals_at_their_instant(self):
        quiet = build_trace(TraceSpec(requests=50, rate=10.0, seed=5))
        bursty = build_trace(TraceSpec(requests=50, rate=10.0, seed=5, bursts=((0.0, 40),)))
        # 40 of the 50 arrivals collapse onto the burst instant.
        assert (bursty.times == 0.0).sum() == 40
        assert quiet.times[-1] > bursty.times[-1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"rate": 0.0},
            {"batch_low": 0},
            {"batch_low": 5, "batch_high": 2},
            {"length_low": 0.0},
        ],
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TraceSpec(**kwargs)

    def test_body_encodes_the_batch(self):
        import json

        trace = build_trace(TraceSpec(requests=3, seed=1))
        decoded = json.loads(trace.body(1))
        np.testing.assert_allclose(decoded["cloudlets"], trace.batch(1).cloudlet_length)


class TestSlo:
    def _report(self, p50=1.0, p99=5.0, errors=0, elapsed=1.0, n=100):
        lat = np.full(n, p50)
        lat[-5:] = p99  # enough tail mass to move the 99th percentile
        return LoadReport(
            latencies_ms=lat,
            offsets=np.arange(n, dtype=np.int64),
            placements=None,
            errors=errors,
            elapsed_s=elapsed,
            cloudlets=n,
        )

    def test_passing_report_has_no_violations(self):
        slo = SloSpec(p50_ms=10.0, p99_ms=50.0, min_throughput_rps=10.0)
        assert slo.violations(self._report()) == []

    def test_each_gate_fires(self):
        report = self._report(p50=20.0, p99=100.0, errors=5, elapsed=100.0)
        slo = SloSpec(p50_ms=10.0, p99_ms=50.0, min_throughput_rps=10.0)
        violations = slo.violations(report)
        assert len(violations) == 4
        assert any("p50" in v for v in violations)
        assert any("p99" in v for v in violations)
        assert any("error rate" in v for v in violations)
        assert any("throughput" in v for v in violations)


class TestReplayEndToEnd:
    def test_http_replay_is_bit_identical_and_meets_slo(self):
        spec = FleetSpec(name="edge", num_vms=64, scheduler="greedy-mct", seed=2)
        service = SchedulerService()
        service.add_fleet(spec)
        trace = build_trace(TraceSpec(requests=300, rate=3000.0, seed=8))
        with start_http_server(service) as handle:
            report = replay(trace, "edge", handle.host, handle.port)
        assert report.errors == 0
        assert report.requests == 300
        assert_bit_identical(spec, trace, report, chunk_sizes=(31, 65_536))
        # Generous local gate; the CI smoke applies the documented budget.
        assert SloSpec(p99_ms=5_000.0).violations(report) == []

    def test_max_throughput_mode(self):
        spec = FleetSpec(name="edge", num_vms=16, scheduler="basetest")
        service = SchedulerService()
        service.add_fleet(spec)
        trace = build_trace(TraceSpec(requests=100, rate=1.0, seed=4))
        with start_http_server(service) as handle:
            report = replay(trace, "edge", handle.host, handle.port, time_scale=0.0)
        # A rate-1.0 schedule would take ~100 s; time_scale=0 ignores it.
        assert report.elapsed_s < 30.0
        assert report.errors == 0
        assert_bit_identical(spec, trace, report)

    def test_inprocess_and_http_replays_place_identically(self):
        spec = FleetSpec(name="edge", num_vms=9, scheduler="greedy-mct", seed=6)
        trace = build_trace(TraceSpec(requests=60, rate=1e6, seed=9))

        inproc_service = SchedulerService()
        inproc_service.add_fleet(spec)
        inproc = replay_inprocess(trace, inproc_service, "edge")

        http_service = SchedulerService()
        http_service.add_fleet(spec)
        with start_http_server(http_service) as handle:
            # One connection serialises dispatch order == admission order.
            over_http = replay(
                trace, "edge", handle.host, handle.port,
                time_scale=0.0, max_connections=1,
            )
        assert over_http.errors == 0
        np.testing.assert_array_equal(over_http.offsets, inproc.offsets)
        for a, b in zip(over_http.placements, inproc.placements):
            np.testing.assert_array_equal(a, b)
