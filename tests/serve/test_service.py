"""Service-core unit tests plus the offline differential pin.

The differential classes are the tentpole contract: every placement the
live service hands out must be reproducible by an offline
``StreamingSimulation`` over the same cloudlets in admission order, bit
for bit, for any chunk geometry and shard count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.telemetry import TELEMETRY
from repro.serve import (
    SERVABLE_SCHEDULERS,
    FleetSpec,
    SchedulerService,
    ServeError,
    concat_batches,
    offline_assignments,
    parse_submission,
)
from repro.serve.loadgen import TraceSpec, build_trace, replay_inprocess, assert_bit_identical


def make_service(**overrides):
    spec = FleetSpec(
        name=overrides.pop("name", "edge"),
        num_vms=overrides.pop("num_vms", 25),
        **overrides,
    )
    service = SchedulerService()
    service.add_fleet(spec)
    return spec, service


class TestFleetSpec:
    def test_servable_set_is_the_online_admissible_pair(self):
        assert SERVABLE_SCHEDULERS == ("basetest", "greedy-mct")

    @pytest.mark.parametrize("scheduler", ["honeybee", "rbs"])
    def test_offline_only_schedulers_rejected(self, scheduler):
        with pytest.raises(ServeError) as excinfo:
            FleetSpec(name="edge", scheduler=scheduler)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unservable-scheduler"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            FleetSpec(name="edge", scheduler="aco")
        assert excinfo.value.code == "unknown-scheduler"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "a/b"},
            {"name": "edge", "num_vms": 0},
            {"name": "edge", "family": "hybrid"},
        ],
    )
    def test_bad_fleet_configs_rejected(self, kwargs):
        with pytest.raises(ServeError):
            FleetSpec(**kwargs)

    def test_fleet_stream_never_uses_constant_cloudlets(self):
        # ConstantCloudlets would trip greedy's cyclic fast path, which a
        # live fleet cannot honour (future submissions are unconstrained).
        from repro.workloads.streaming import MaterializedCloudlets

        stream = FleetSpec(name="edge", num_vms=4).fleet_stream()
        assert isinstance(stream.cloudlets, MaterializedCloudlets)


class TestSubmission:
    def test_placements_within_fleet_and_offsets_advance(self):
        spec, service = make_service()
        first = service.submit("edge", {"cloudlets": [1000.0, 2000.0]})
        second = service.submit("edge", {"count": 3, "length": 500.0})
        assert first.offset == 0 and second.offset == 2
        assert first.size == 2 and second.size == 3
        for placed in (first, second):
            assert placed.placements.dtype == np.int64
            assert (placed.placements >= 0).all()
            assert (placed.placements < spec.num_vms).all()

    def test_unknown_fleet_is_a_404(self):
        _, service = make_service()
        with pytest.raises(ServeError) as excinfo:
            service.submit("nope", {"count": 1, "length": 1.0})
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown-fleet"

    def test_duplicate_fleet_is_a_409(self):
        spec, service = make_service()
        with pytest.raises(ServeError) as excinfo:
            service.add_fleet(spec)
        assert excinfo.value.status == 409

    def test_backlog_fold_matches_submitted_work(self):
        spec, service = make_service(scheduler="basetest", num_vms=5)
        lengths = np.arange(1.0, 11.0)
        service.submit("edge", {"cloudlets": lengths.tolist()})
        fleet = service.fleet("edge")
        stream = spec.fleet_stream()
        expected = np.zeros(5)
        inv_capacity = 1.0 / (stream.vm_mips[0] * stream.vm_pes[0])
        np.add.at(expected, np.arange(10) % 5, lengths * inv_capacity)
        np.testing.assert_array_equal(fleet.backlog, expected)
        assert fleet.counts.sum() == 10

    def test_telemetry_counters_and_gauges(self):
        _, service = make_service()
        with obs.enabled(True):
            before = TELEMETRY.snapshot()
            service.submit("edge", {"count": 4, "length": 100.0})
            service.submit("edge", {"count": 2, "length": 100.0})
            for placed in range(2):
                service.fleet("edge").observe_latency(0.001)
            stats = service.stats()["fleets"][0]
            diff = TELEMETRY.snapshot().diff(before).to_dict()
        assert diff["counters"]["serve.requests"] == 2
        assert diff["counters"]["serve.batch_size"] == 6
        assert "serve.edge.latency_p50_ms" in diff["gauges"]
        assert "serve.edge.latency_p99_ms" in diff["gauges"]
        assert stats["latency_p50_ms"] > 0

    def test_manifest_provenance(self):
        spec, service = make_service(seed=9)
        manifest = service.fleet("edge").manifest
        assert manifest.engine == "serve"
        assert manifest.seed == 9
        assert manifest.scenario["name"] == "serve-edge"
        assert manifest.scheduler["name"] == "greedy-mct"
        assert manifest.extra["fleet"] == "edge"
        # Same spec, same fingerprint — a fresh process reproduces it.
        _, other = make_service(seed=9)
        assert (
            other.fleet("edge").manifest.fingerprint() == manifest.fingerprint()
        )

    def test_stats_reports_estimated_makespan_for_greedy(self):
        _, service = make_service(scheduler="greedy-mct")
        service.submit("edge", {"count": 10, "length": 1000.0})
        assert service.stats()["fleets"][0]["estimated_makespan"] > 0


@pytest.mark.parametrize("scheduler", SERVABLE_SCHEDULERS)
@pytest.mark.parametrize("family", ["homogeneous", "heterogeneous"])
class TestDifferential:
    """Live placements == offline StreamingSimulation, bit for bit."""

    def _run(self, scheduler, family, seed=0, requests=120):
        spec = FleetSpec(
            name="diff", num_vms=17, scheduler=scheduler, family=family, seed=seed
        )
        service = SchedulerService()
        service.add_fleet(spec)
        trace = build_trace(
            TraceSpec(requests=requests, rate=1e9, seed=seed + 1, batch_high=9)
        )
        report = replay_inprocess(trace, service, "diff")
        return spec, trace, report

    def test_bit_identical_across_chunk_sizes(self, scheduler, family):
        spec, trace, report = self._run(scheduler, family)
        # Chunk sizes straddle the submission sizes: per-cloudlet chunks,
        # misaligned primes, and one chunk swallowing everything.
        assert_bit_identical(spec, trace, report, chunk_sizes=(1, 7, 64, 100_000))

    def test_bit_identical_under_sharded_offline_replay(self, scheduler, family):
        spec, trace, report = self._run(scheduler, family)
        admitted = concat_batches([trace.batch(i) for i in np.argsort(report.offsets)])
        live = np.concatenate(
            [report.placements[int(i)] for i in np.argsort(report.offsets)]
        )
        for shards in (2, 3):
            offline = offline_assignments(spec, admitted, chunk_size=32, shards=shards)
            np.testing.assert_array_equal(offline, live)

    def test_single_cloudlet_submissions_match_batched(self, scheduler, family):
        # The same cloudlets submitted one at a time land identically:
        # admission order, not batch geometry, defines the outcome.
        spec, trace, report = self._run(scheduler, family, requests=40)
        single = SchedulerService()
        single.add_fleet(spec)
        placements = []
        for i in range(trace.num_requests):
            batch = trace.batch(i)
            for j in range(batch.size):
                placed = single.submit(
                    "diff", {"cloudlets": [float(batch.cloudlet_length[j])]}
                )
                placements.append(placed.placements)
        np.testing.assert_array_equal(
            np.concatenate(placements), np.concatenate(report.placements)
        )


class TestParseSubmission:
    def test_explicit_and_shorthand_agree(self):
        explicit = parse_submission({"cloudlets": [{"length": 5.0}] * 3})
        shorthand = parse_submission({"count": 3, "length": 5.0})
        np.testing.assert_array_equal(
            explicit.cloudlet_length, shorthand.cloudlet_length
        )

    @pytest.mark.parametrize(
        "payload,code",
        [
            ([1, 2], "bad-request"),
            ({"cloudlets": []}, "empty-batch"),
            ({"cloudlets": "nope"}, "bad-request"),
            ({"cloudlets": [0.0]}, "bad-request"),
            ({"cloudlets": [-3.0]}, "bad-request"),
            ({"cloudlets": [float("nan")]}, "bad-request"),
            ({"cloudlets": [{"length": 1.0, "pes": 2}]}, "bad-request"),
            ({"cloudlets": [{"length": 1.0, "file_size": -1}]}, "bad-request"),
            ({"count": 0, "length": 1.0}, "bad-request"),
            ({"count": 2.5, "length": 1.0}, "bad-request"),
            ({"count": 1}, "bad-request"),
            ({"count": 1, "length": 1.0, "cloudlets": []}, "bad-request"),
            ({"count": 10**9, "length": 1.0}, "batch-too-large"),
        ],
    )
    def test_malformed_submissions(self, payload, code):
        with pytest.raises(ServeError) as excinfo:
            parse_submission(payload)
        assert excinfo.value.code == code
        assert 400 <= excinfo.value.status < 500

    def test_service_survives_rejected_submissions(self):
        spec, service = make_service()
        with pytest.raises(ServeError):
            service.submit("edge", {"cloudlets": []})
        placed = service.submit("edge", {"count": 1, "length": 10.0})
        assert placed.offset == 0  # the rejected batch consumed nothing
