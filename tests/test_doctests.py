"""Execute the runnable examples embedded in docstrings.

Keeps the documentation honest: every ``>>>`` example in these modules is
executed on each test run.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

#: modules whose docstrings carry executable examples.
MODULES_WITH_EXAMPLES = [
    "repro",
    "repro.core.engine",
    "repro.core.rng",
    "repro.obs",
    "repro.obs.telemetry",
    "repro.obs.manifest",
    "repro.obs.export",
    "repro.cache",
    "repro.optim",
    "repro.workloads.synthetic",
    "repro.workloads.streaming",
    "repro.schedulers.streaming",
    "repro.schedulers.gsa",
    "repro.schedulers.psogsa",
    "repro.schedulers.cuckoo_sos",
    "repro.serve",
    "repro.serve.protocol",
    "repro.serve.service",
    "repro.serve.loadgen",
    "repro.experiments.profiling",
    "repro.analysis.report_md",
    "repro.metrics.resilience",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_EXAMPLES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
    assert results.attempted > 0, f"{module_name} has no doctests; update the list"
