"""Workflow DAG model and generators."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflows.dag import (
    WorkflowSpec,
    WorkflowTask,
    fork_join_workflow,
    layered_workflow,
    random_workflow,
)


def diamond() -> WorkflowSpec:
    """0 -> {1, 2} -> 3."""
    tasks = tuple(WorkflowTask(task_id=i, length=1000.0) for i in range(4))
    edges = ((0, 1, 10.0), (0, 2, 10.0), (1, 3, 10.0), (2, 3, 10.0))
    return WorkflowSpec(name="diamond", tasks=tasks, edges=edges)


class TestTaskValidation:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            WorkflowTask(task_id=0, length=0.0)
        with pytest.raises(ValueError):
            WorkflowTask(task_id=0, length=1.0, pes=0)
        with pytest.raises(ValueError):
            WorkflowTask(task_id=0, length=1.0, file_size=-1.0)


class TestSpecValidation:
    def test_diamond_is_valid(self):
        spec = diamond()
        assert spec.num_tasks == 4
        assert spec.entry_tasks() == [0]

    def test_ids_must_be_sequential(self):
        tasks = (WorkflowTask(task_id=1, length=1.0),)
        with pytest.raises(ValueError, match="0..n-1"):
            WorkflowSpec(name="x", tasks=tasks, edges=())

    def test_cycle_rejected(self):
        tasks = tuple(WorkflowTask(task_id=i, length=1.0) for i in range(2))
        with pytest.raises(ValueError, match="cycle"):
            WorkflowSpec(name="x", tasks=tasks, edges=((0, 1, 1.0), (1, 0, 1.0)))

    def test_self_loop_rejected(self):
        tasks = (WorkflowTask(task_id=0, length=1.0),)
        with pytest.raises(ValueError, match="self-loop"):
            WorkflowSpec(name="x", tasks=tasks, edges=((0, 0, 1.0),))

    def test_duplicate_edge_rejected(self):
        tasks = tuple(WorkflowTask(task_id=i, length=1.0) for i in range(2))
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowSpec(name="x", tasks=tasks, edges=((0, 1, 1.0), (0, 1, 2.0)))

    def test_unknown_task_in_edge_rejected(self):
        tasks = (WorkflowTask(task_id=0, length=1.0),)
        with pytest.raises(ValueError, match="unknown"):
            WorkflowSpec(name="x", tasks=tasks, edges=((0, 5, 1.0),))

    def test_negative_data_rejected(self):
        tasks = tuple(WorkflowTask(task_id=i, length=1.0) for i in range(2))
        with pytest.raises(ValueError, match="negative data"):
            WorkflowSpec(name="x", tasks=tasks, edges=((0, 1, -1.0),))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            WorkflowSpec(name="x", tasks=(), edges=())


class TestGraphViews:
    def test_parents_children(self):
        spec = diamond()
        assert sorted(spec.parents(3)) == [(1, 10.0), (2, 10.0)]
        assert sorted(spec.children(0)) == [(1, 10.0), (2, 10.0)]

    def test_topological_order_respects_edges(self):
        order = diamond().topological_order()
        position = {t: i for i, t in enumerate(order)}
        assert position[0] < position[1] < position[3]
        assert position[0] < position[2] < position[3]

    def test_critical_path_diamond(self):
        # path 0->1->3: 3 tasks x 1000 MI at 1000 mips + 2 transfers at 10 MB/100 bw
        assert diamond().critical_path_seconds(1000.0, bandwidth=100.0) == pytest.approx(
            3.0 + 0.2
        )
        assert diamond().critical_path_seconds(1000.0) == pytest.approx(3.0)

    def test_critical_path_validation(self):
        with pytest.raises(ValueError):
            diamond().critical_path_seconds(0.0)
        with pytest.raises(ValueError):
            diamond().critical_path_seconds(1.0, bandwidth=0.0)


class TestGenerators:
    def test_layered_structure(self):
        spec = layered_workflow(num_layers=3, width=2, seed=1)
        assert spec.num_tasks == 6
        # Each non-final layer task feeds both next-layer tasks.
        assert len(spec.edges) == 2 * 2 * 2
        assert nx.is_directed_acyclic_graph(spec.graph())

    def test_fork_join_structure(self):
        spec = fork_join_workflow(branches=5, seed=1)
        assert spec.num_tasks == 7
        assert spec.entry_tasks() == [0]
        assert len(list(spec.parents(6))) == 5

    def test_random_acyclic_and_deterministic(self):
        a = random_workflow(30, edge_probability=0.2, seed=9)
        b = random_workflow(30, edge_probability=0.2, seed=9)
        assert a.edges == b.edges
        assert nx.is_directed_acyclic_graph(a.graph())

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            layered_workflow(0, 1)
        with pytest.raises(ValueError):
            fork_join_workflow(0)
        with pytest.raises(ValueError):
            random_workflow(5, edge_probability=1.5)
        with pytest.raises(ValueError):
            random_workflow(5, length_range=(0.0, 1.0))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_random_dags_valid(self, n, p, seed):
        spec = random_workflow(n, edge_probability=p, seed=seed)
        assert spec.num_tasks == n
        assert nx.is_directed_acyclic_graph(spec.graph())
        order = spec.topological_order()
        assert sorted(order) == list(range(n))
