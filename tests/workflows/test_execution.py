"""Workflow schedulers and dependency-aware execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workflows.broker import WorkflowSimulation
from repro.workflows.dag import (
    WorkflowSpec,
    WorkflowTask,
    fork_join_workflow,
    layered_workflow,
    random_workflow,
)
from repro.workflows.schedulers import HeftScheduler, RoundRobinWorkflowScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


def chain(lengths=(1000.0, 2000.0, 3000.0), data=50.0) -> WorkflowSpec:
    tasks = tuple(
        WorkflowTask(task_id=i, length=float(length)) for i, length in enumerate(lengths)
    )
    edges = tuple((i, i + 1, data) for i in range(len(lengths) - 1))
    return WorkflowSpec(name="chain", tasks=tasks, edges=edges)


class TestSchedulers:
    def test_round_robin_valid(self):
        wf = random_workflow(20, seed=1)
        sc = heterogeneous_scenario(5, 10, seed=1)
        assignment = RoundRobinWorkflowScheduler().schedule_checked(wf, sc)
        assert assignment.shape == (20,)

    def test_heft_valid_and_deterministic(self):
        wf = random_workflow(20, seed=1)
        sc = heterogeneous_scenario(5, 10, seed=1)
        a = HeftScheduler().schedule_checked(wf, sc)
        b = HeftScheduler().schedule_checked(wf, sc)
        np.testing.assert_array_equal(a, b)

    def test_heft_chain_prefers_colocation_on_fastest(self):
        # A pure chain has no parallelism: HEFT should put everything on
        # the fastest VM (no transfer penalties, max speed).
        wf = chain()
        sc = heterogeneous_scenario(6, 10, seed=2)
        assignment = HeftScheduler().schedule_checked(wf, sc)
        fastest = int(np.argmax(sc.arrays().vm_mips))
        assert (assignment == fastest).all()

    def test_bad_assignment_shape_detected(self):
        wf = random_workflow(5, seed=0)
        sc = heterogeneous_scenario(4, 5, seed=0)

        class Broken(RoundRobinWorkflowScheduler):
            def schedule(self, workflow, scenario):
                return np.zeros(3, dtype=np.int64)

        with pytest.raises(ValueError, match="shape"):
            Broken().schedule_checked(wf, sc)


class TestExecution:
    def test_chain_respects_dependencies_and_transfers(self):
        wf = chain(lengths=(1000.0, 1000.0), data=500.0)
        sc = homogeneous_scenario(4, 4, seed=0)  # 1000 mips, 500 bw VMs

        class SplitScheduler(RoundRobinWorkflowScheduler):
            def schedule(self, workflow, scenario):
                return np.array([0, 1], dtype=np.int64)

        result = WorkflowSimulation(wf, sc, SplitScheduler()).run()
        # task0: [0, 1]; transfer 500 MB / 500 bw = 1 s; task1: [2, 3].
        assert result.finish_times[0] == pytest.approx(1.0)
        assert result.start_times[1] == pytest.approx(2.0)
        assert result.makespan == pytest.approx(3.0)
        assert result.transfer_seconds == pytest.approx(1.0)

    def test_colocated_chain_has_no_transfer(self):
        wf = chain(lengths=(1000.0, 1000.0), data=500.0)
        sc = homogeneous_scenario(4, 4, seed=0)

        class Colocate(RoundRobinWorkflowScheduler):
            def schedule(self, workflow, scenario):
                return np.zeros(2, dtype=np.int64)

        result = WorkflowSimulation(wf, sc, Colocate()).run()
        assert result.makespan == pytest.approx(2.0)
        assert result.transfer_seconds == 0.0

    @pytest.mark.parametrize(
        "workflow_factory",
        [
            lambda: random_workflow(30, edge_probability=0.15, seed=4),
            lambda: layered_workflow(4, 3, seed=4),
            lambda: fork_join_workflow(8, seed=4),
        ],
    )
    def test_start_after_all_parents_finish(self, workflow_factory):
        wf = workflow_factory()
        sc = heterogeneous_scenario(6, 10, seed=3)
        result = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        for u, v, _ in wf.edges:
            assert result.start_times[v] >= result.finish_times[u] - 1e-9

    def test_makespan_at_least_critical_path(self):
        wf = random_workflow(25, edge_probability=0.2, seed=6)
        sc = heterogeneous_scenario(8, 10, seed=6)
        result = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        assert result.makespan >= result.critical_path_bound - 1e-9
        assert 0 < result.efficiency_vs_bound <= 1.0 + 1e-9

    def test_heft_beats_round_robin_on_random_dags(self):
        wins = 0
        for seed in range(5):
            wf = random_workflow(40, edge_probability=0.1, seed=seed)
            sc = heterogeneous_scenario(8, 10, seed=seed)
            heft = WorkflowSimulation(wf, sc, HeftScheduler()).run()
            rr = WorkflowSimulation(wf, sc, RoundRobinWorkflowScheduler()).run()
            if heft.makespan < rr.makespan:
                wins += 1
        assert wins >= 4

    def test_speedup_reported(self):
        wf = fork_join_workflow(10, seed=2)
        sc = heterogeneous_scenario(10, 10, seed=2)
        result = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        assert result.speedup > 1.0
        assert result.scheduling_time >= 0
        assert result.events_processed > 0

    def test_single_task_workflow(self):
        wf = WorkflowSpec(
            name="solo", tasks=(WorkflowTask(task_id=0, length=1000.0),), edges=()
        )
        sc = homogeneous_scenario(2, 2, seed=0)
        result = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        assert result.makespan == pytest.approx(1.0)


class TestWorkflowCosts:
    def test_costs_positive_and_assignment_sensitive(self):
        from repro.workflows.broker import workflow_costs

        wf = random_workflow(20, edge_probability=0.1, seed=3)
        sc = heterogeneous_scenario(8, 10, seed=1)
        cheap_like = np.zeros(20, dtype=np.int64)
        costs = workflow_costs(wf, sc, cheap_like)
        assert costs.shape == (20,)
        assert (costs > 0).all()

    def test_result_total_cost_matches_helper(self):
        from repro.workflows.broker import workflow_costs

        wf = random_workflow(20, edge_probability=0.1, seed=3)
        sc = heterogeneous_scenario(8, 10, seed=1)
        result = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        assert result.total_cost == pytest.approx(
            workflow_costs(wf, sc, result.assignment).sum()
        )


class TestDeadlineWorkflowScheduler:
    def test_validation(self):
        from repro.workflows.schedulers import DeadlineWorkflowScheduler

        with pytest.raises(ValueError):
            DeadlineWorkflowScheduler(deadline=0.0)
        with pytest.raises(ValueError):
            DeadlineWorkflowScheduler(slack_factor=0.0)

    def test_loose_deadline_buys_cost_savings(self):
        from repro.workflows.schedulers import DeadlineWorkflowScheduler

        wf = random_workflow(40, edge_probability=0.1, seed=3)
        sc = heterogeneous_scenario(12, 10, seed=1)
        heft = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        loose = WorkflowSimulation(
            wf, sc, DeadlineWorkflowScheduler(slack_factor=10.0)
        ).run()
        assert loose.total_cost < heft.total_cost

    def test_tight_deadline_approaches_heft_makespan(self):
        from repro.workflows.schedulers import DeadlineWorkflowScheduler

        wf = random_workflow(40, edge_probability=0.1, seed=3)
        sc = heterogeneous_scenario(12, 10, seed=1)
        heft = WorkflowSimulation(wf, sc, HeftScheduler()).run()
        tight = WorkflowSimulation(
            wf, sc, DeadlineWorkflowScheduler(deadline=1e-6)
        ).run()
        # With an unmeetable deadline every choice falls back to min-EFT.
        assert tight.makespan <= heft.makespan * 1.3

    def test_makespan_monotone_in_slack(self):
        from repro.workflows.schedulers import DeadlineWorkflowScheduler

        wf = random_workflow(40, edge_probability=0.1, seed=3)
        sc = heterogeneous_scenario(12, 10, seed=1)
        results = [
            WorkflowSimulation(
                wf, sc, DeadlineWorkflowScheduler(slack_factor=s)
            ).run()
            for s in (1.2, 4.0)
        ]
        assert results[0].makespan <= results[1].makespan
        assert results[0].total_cost >= results[1].total_cost

    def test_dependencies_still_respected(self):
        from repro.workflows.schedulers import DeadlineWorkflowScheduler

        wf = layered_workflow(4, 3, seed=4)
        sc = heterogeneous_scenario(6, 10, seed=3)
        result = WorkflowSimulation(
            wf, sc, DeadlineWorkflowScheduler(slack_factor=3.0)
        ).run()
        for u, v, _ in wf.edges:
            assert result.start_times[v] >= result.finish_times[u] - 1e-9
