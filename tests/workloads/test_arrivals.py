"""Arrival processes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rng import spawn_rng
from repro.workloads.arrivals import (
    BatchArrivals,
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
)

ALL_PROCESSES = [
    BatchArrivals(),
    BatchArrivals(at=5.0),
    UniformArrivals(interval=0.5),
    PoissonArrivals(rate=3.0),
    BurstyArrivals(burst_size=5, burst_rate=10.0, period=2.0),
]


class TestCommonProperties:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_non_decreasing_and_non_negative(self, process):
        times = process.sample(spawn_rng(1, "arr"), 50)
        assert times.shape == (50,)
        assert (times >= 0).all()
        assert (np.diff(times) >= -1e-12).all()

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_deterministic_given_rng(self, process):
        a = process.sample(spawn_rng(7, "arr"), 30)
        b = process.sample(spawn_rng(7, "arr"), 30)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_n_validated(self, process):
        with pytest.raises(ValueError):
            process.sample(spawn_rng(0, "arr"), 0)


class TestBatch:
    def test_all_at_instant(self):
        times = BatchArrivals(at=2.5).sample(spawn_rng(0, "a"), 10)
        assert (times == 2.5).all()

    def test_negative_instant_rejected(self):
        with pytest.raises(ValueError):
            BatchArrivals(at=-1.0)


class TestUniform:
    def test_spacing(self):
        times = UniformArrivals(interval=2.0, start=1.0).sample(spawn_rng(0, "a"), 4)
        np.testing.assert_allclose(times, [1.0, 3.0, 5.0, 7.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformArrivals(interval=0.0)
        with pytest.raises(ValueError):
            UniformArrivals(interval=1.0, start=-1.0)


class TestPoisson:
    def test_mean_rate_approx(self):
        times = PoissonArrivals(rate=10.0).sample(spawn_rng(3, "a"), 5000)
        measured_rate = 5000 / times[-1]
        assert measured_rate == pytest.approx(10.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)


class TestBursty:
    def test_bursts_cluster_within_periods(self):
        process = BurstyArrivals(burst_size=10, burst_rate=100.0, period=10.0)
        times = process.sample(spawn_rng(5, "a"), 30)
        # Three bursts; each burst's arrivals start after its period offset.
        assert times[0] >= 0.0
        assert times[10] >= 10.0
        assert times[20] >= 20.0

    def test_partial_last_burst(self):
        process = BurstyArrivals(burst_size=10, burst_rate=100.0, period=10.0)
        times = process.sample(spawn_rng(5, "a"), 13)
        assert times.shape == (13,)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(burst_size=0, burst_rate=1.0, period=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(burst_size=1, burst_rate=0.0, period=1.0)

    @given(
        n=st.integers(min_value=1, max_value=100),
        burst=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_property_sorted_output(self, n, burst, seed):
        process = BurstyArrivals(burst_size=burst, burst_rate=5.0, period=3.0)
        times = process.sample(spawn_rng(seed, "a"), n)
        assert (np.diff(times) >= -1e-12).all()
