"""Homogeneous and heterogeneous scenario generators (Tables III-VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.heterogeneous import (
    CLOUDLET_LENGTH_RANGE,
    COST_PER_BW_RANGE,
    COST_PER_MEM_RANGE,
    COST_PER_STORAGE_RANGE,
    VM_MIPS_RANGE,
    heterogeneous_scenario,
)
from repro.workloads.homogeneous import (
    HOMOGENEOUS_CLOUDLET,
    HOMOGENEOUS_VM,
    homogeneous_scenario,
)


class TestHomogeneous:
    def test_table_iii_and_iv_constants(self):
        assert HOMOGENEOUS_VM.mips == 1000.0
        assert HOMOGENEOUS_VM.ram == 512.0
        assert HOMOGENEOUS_VM.bw == 500.0
        assert HOMOGENEOUS_VM.size == 5000.0
        assert HOMOGENEOUS_CLOUDLET.length == 250.0
        assert HOMOGENEOUS_CLOUDLET.file_size == 300.0

    def test_all_elements_identical(self):
        sc = homogeneous_scenario(num_vms=20, num_cloudlets=50)
        assert len(set(sc.vms)) == 1
        assert len(set(sc.cloudlets)) == 1

    def test_vms_spread_round_robin(self):
        sc = homogeneous_scenario(num_vms=10, num_cloudlets=5, num_datacenters=3)
        counts = np.bincount(sc.vm_datacenter, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            homogeneous_scenario(num_vms=0, num_cloudlets=1)
        with pytest.raises(ValueError):
            homogeneous_scenario(num_vms=1, num_cloudlets=1, num_datacenters=5)

    def test_name_encodes_sizes(self):
        assert "5vms" in homogeneous_scenario(5, 7).name


class TestHeterogeneous:
    def test_ranges_match_tables(self):
        sc = heterogeneous_scenario(num_vms=200, num_cloudlets=500, seed=0)
        arr = sc.arrays()
        assert arr.vm_mips.min() >= VM_MIPS_RANGE[0]
        assert arr.vm_mips.max() <= VM_MIPS_RANGE[1]
        assert arr.cloudlet_length.min() >= CLOUDLET_LENGTH_RANGE[0]
        assert arr.cloudlet_length.max() <= CLOUDLET_LENGTH_RANGE[1]
        assert (arr.dc_cost_per_mem >= COST_PER_MEM_RANGE[0]).all()
        assert (arr.dc_cost_per_mem <= COST_PER_MEM_RANGE[1]).all()
        assert (arr.dc_cost_per_storage >= COST_PER_STORAGE_RANGE[0]).all()
        assert (arr.dc_cost_per_storage <= COST_PER_STORAGE_RANGE[1]).all()
        assert (arr.dc_cost_per_bw >= COST_PER_BW_RANGE[0]).all()
        assert (arr.dc_cost_per_bw <= COST_PER_BW_RANGE[1]).all()
        assert (arr.dc_cost_per_cpu == 3.0).all()

    def test_non_mips_vm_attributes_fixed(self):
        sc = heterogeneous_scenario(num_vms=30, num_cloudlets=10, seed=0)
        assert {v.ram for v in sc.vms} == {512.0}
        assert {v.bw for v in sc.vms} == {500.0}
        assert {v.size for v in sc.vms} == {5000.0}

    def test_deterministic_per_seed(self):
        a = heterogeneous_scenario(10, 20, seed=3)
        b = heterogeneous_scenario(10, 20, seed=3)
        assert a.vms == b.vms
        assert a.cloudlets == b.cloudlets

    def test_seeds_differ(self):
        a = heterogeneous_scenario(10, 20, seed=3)
        b = heterogeneous_scenario(10, 20, seed=4)
        assert a.vms != b.vms

    def test_vm_fleet_stable_when_cloudlet_count_changes(self):
        a = heterogeneous_scenario(10, 20, seed=3)
        b = heterogeneous_scenario(10, 200, seed=3)
        assert a.vms == b.vms
        assert a.datacenters == b.datacenters
        # And the common cloudlet prefix matches too (stream independence).
        assert a.cloudlets == b.cloudlets[:20]

    def test_validation(self):
        with pytest.raises(ValueError):
            heterogeneous_scenario(0, 1)
        with pytest.raises(ValueError):
            heterogeneous_scenario(2, 1, num_datacenters=5)
