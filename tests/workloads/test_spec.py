"""Scenario value objects and array views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.spec import CloudletSpec, DatacenterSpec, ScenarioSpec, VmSpec


class TestVmSpec:
    def test_build_materialises_vm(self):
        spec = VmSpec(mips=1500.0, ram=256.0)
        vm = spec.build(vm_id=3)
        assert vm.vm_id == 3
        assert vm.mips == 1500.0
        assert vm.ram == 256.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            VmSpec(mips=0.0)
        with pytest.raises(ValueError):
            VmSpec(mips=100.0, ram=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            VmSpec(mips=100.0).mips = 5.0


class TestCloudletSpec:
    def test_build(self):
        c = CloudletSpec(length=123.0).build(cloudlet_id=9)
        assert c.cloudlet_id == 9
        assert c.length == 123.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            CloudletSpec(length=0.0)
        with pytest.raises(ValueError):
            CloudletSpec(length=1.0, file_size=-1.0)


class TestDatacenterSpec:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            DatacenterSpec(host_pes=0)


class TestScenarioSpec:
    def test_validation(self, tiny_scenario):
        assert tiny_scenario.num_vms == 4
        assert tiny_scenario.num_cloudlets == 8
        assert tiny_scenario.num_datacenters == 2

    def test_requires_nonempty_collections(self, tiny_scenario):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(tiny_scenario, vms=(), vm_datacenter=())
        with pytest.raises(ValueError):
            dataclasses.replace(tiny_scenario, cloudlets=())
        with pytest.raises(ValueError):
            dataclasses.replace(tiny_scenario, datacenters=())

    def test_vm_datacenter_alignment_enforced(self, tiny_scenario):
        import dataclasses

        with pytest.raises(ValueError, match="aligned"):
            dataclasses.replace(tiny_scenario, vm_datacenter=(0,))
        with pytest.raises(ValueError, match="invalid datacenter"):
            dataclasses.replace(tiny_scenario, vm_datacenter=(0, 1, 0, 9))

    def test_vms_in_datacenter(self, tiny_scenario):
        assert list(tiny_scenario.vms_in_datacenter(0)) == [0, 2]
        assert list(tiny_scenario.vms_in_datacenter(1)) == [1, 3]

    def test_arrays_cached(self, tiny_scenario):
        assert tiny_scenario.arrays() is tiny_scenario.arrays()

    def test_array_contents(self, tiny_scenario):
        arr = tiny_scenario.arrays()
        np.testing.assert_array_equal(arr.vm_mips, [500.0, 1000.0, 2000.0, 4000.0])
        np.testing.assert_array_equal(arr.vm_datacenter, [0, 1, 0, 1])
        assert arr.cloudlet_length.shape == (8,)
        assert arr.dc_cost_per_cpu.shape == (2,)

    def test_exec_time_matrix_shape_and_values(self, tiny_scenario):
        arr = tiny_scenario.arrays()
        matrix = arr.exec_time_matrix()
        assert matrix.shape == (8, 4)
        expected_00 = arr.cloudlet_length[0] / arr.vm_mips[0] + (
            arr.cloudlet_file_size[0] / arr.vm_bw[0]
        )
        assert matrix[0, 0] == pytest.approx(expected_00)

    def test_exec_time_handles_zero_bandwidth(self, tiny_scenario):
        import dataclasses

        vms = tuple(dataclasses.replace(v, bw=0.0) for v in tiny_scenario.vms)
        scenario = dataclasses.replace(tiny_scenario, vms=vms)
        arr = scenario.arrays()
        row = arr.expected_exec_time(0)
        assert np.isfinite(row).all()
        np.testing.assert_allclose(row, arr.cloudlet_length[0] / arr.vm_mips)
