"""Synthetic workload builder and distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import spawn_rng
from repro.workloads.synthetic import DistributionSpec, SyntheticWorkloadBuilder


class TestDistributionSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            DistributionSpec("zipf", {})

    def test_missing_params_rejected(self):
        with pytest.raises(ValueError, match="missing parameters"):
            DistributionSpec("uniform", {"low": 0})

    @pytest.mark.parametrize(
        "kind,params,low,high",
        [
            ("constant", {"value": 5.0}, 5.0, 5.0),
            ("uniform", {"low": 2.0, "high": 4.0}, 2.0, 4.0),
            ("bimodal", {"low": 1.0, "high": 9.0, "p_high": 0.5}, 1.0, 9.0),
            ("choice", {"values": [3.0, 7.0]}, 3.0, 7.0),
        ],
    )
    def test_bounded_distributions_stay_in_range(self, kind, params, low, high):
        dist = DistributionSpec(kind, params)
        samples = dist.sample(spawn_rng(0, "t"), 500)
        assert samples.min() >= low
        assert samples.max() <= high

    @pytest.mark.parametrize(
        "kind,params",
        [
            ("normal", {"mean": 10.0, "std": 2.0}),
            ("lognormal", {"mean": 1.0, "sigma": 0.5}),
            ("pareto", {"shape": 2.0, "scale": 10.0}),
            ("exponential", {"scale": 3.0}),
        ],
    )
    def test_unbounded_distributions_sample(self, kind, params):
        dist = DistributionSpec(kind, params)
        samples = dist.sample(spawn_rng(0, "t"), 500)
        assert samples.shape == (500,)
        assert np.isfinite(samples).all()

    def test_pareto_respects_scale_floor(self):
        dist = DistributionSpec("pareto", {"shape": 2.0, "scale": 10.0})
        assert dist.sample(spawn_rng(0, "t"), 1000).min() >= 10.0

    def test_bimodal_probability_validated(self):
        dist = DistributionSpec("bimodal", {"low": 0.0, "high": 1.0, "p_high": 2.0})
        with pytest.raises(ValueError, match="probability"):
            dist.sample(spawn_rng(0, "t"), 10)

    def test_choice_empty_rejected(self):
        dist = DistributionSpec("choice", {"values": []})
        with pytest.raises(ValueError, match="at least one"):
            dist.sample(spawn_rng(0, "t"), 10)


class TestBuilder:
    def test_build_full_scenario(self):
        spec = (
            SyntheticWorkloadBuilder(seed=3)
            .vms(10, mips=DistributionSpec("uniform", {"low": 500, "high": 4000}))
            .cloudlets(
                100, length=DistributionSpec("pareto", {"shape": 2.0, "scale": 1000.0})
            )
            .datacenters(2)
            .build("pareto-mix")
        )
        assert spec.name == "pareto-mix"
        assert spec.num_vms == 10
        assert spec.num_cloudlets == 100
        assert spec.num_datacenters == 2
        arr = spec.arrays()
        assert arr.vm_mips.min() >= 500.0
        assert arr.cloudlet_length.min() >= 1000.0

    def test_defaults_mirror_homogeneous_tables(self):
        spec = SyntheticWorkloadBuilder(seed=0).vms(4).cloudlets(8).build()
        assert {v.mips for v in spec.vms} == {1000.0}
        assert {c.length for c in spec.cloudlets} == {250.0}

    def test_runs_through_simulator(self):
        from repro.cloud.simulation import CloudSimulation
        from repro.schedulers import RoundRobinScheduler

        spec = (
            SyntheticWorkloadBuilder(seed=1)
            .vms(5, mips=DistributionSpec("choice", {"values": [500.0, 2000.0]}))
            .cloudlets(25, length=DistributionSpec("exponential", {"scale": 2000.0}))
            .datacenters(2)
            .build()
        )
        result = CloudSimulation(spec, RoundRobinScheduler(), seed=1).run()
        assert result.makespan > 0

    def test_build_without_vms_rejected(self):
        with pytest.raises(ValueError, match=r"\.vms"):
            SyntheticWorkloadBuilder().cloudlets(5).build()

    def test_build_without_cloudlets_rejected(self):
        with pytest.raises(ValueError, match=r"\.cloudlets"):
            SyntheticWorkloadBuilder().vms(5).build()

    def test_more_datacenters_than_vms_rejected(self):
        builder = SyntheticWorkloadBuilder().vms(2).cloudlets(5).datacenters(4)
        with pytest.raises(ValueError, match="datacenters"):
            builder.build()

    def test_deterministic(self):
        def build():
            return (
                SyntheticWorkloadBuilder(seed=5)
                .vms(6, mips=DistributionSpec("normal", {"mean": 1000, "std": 100}))
                .cloudlets(12)
                .build()
            )

        assert build().vms == build().vms

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadBuilder().vms(0)
        with pytest.raises(ValueError):
            SyntheticWorkloadBuilder().cloudlets(0)
        with pytest.raises(ValueError):
            SyntheticWorkloadBuilder().datacenters(0)
