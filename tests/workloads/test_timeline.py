"""Tests for the declarative dynamic-scenario timeline DSL."""

import math

import numpy as np
import pytest

from repro.cloud.faults import VmFailure, VmSlowdown
from repro.workloads.timeline import (
    Burst,
    Drift,
    RateChange,
    RateRamp,
    Timeline,
    TimelineArrivals,
    Trigger,
    VmFault,
    parse_duration,
    parse_time,
    sample_from_spec,
    timeline_from_dict,
)


class TestParsers:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (90, 90.0),
            (1.5, 1.5),
            ("45s", 45.0),
            ("30m", 1800.0),
            ("2h", 7200.0),
            ("1d", 86400.0),
            ("1.5h", 5400.0),
            ("90", 90.0),
        ],
    )
    def test_parse_duration(self, value, expected):
        assert parse_duration(value) == expected

    @pytest.mark.parametrize("bad", ["", "h", "-5s", "2 hours", "1h30m", "+2h"])
    def test_parse_duration_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    def test_parse_duration_rejects_negative_number(self):
        with pytest.raises(ValueError):
            parse_duration(-1.0)

    def test_parse_duration_rejects_non_string(self):
        with pytest.raises(TypeError):
            parse_duration(None)

    def test_parse_time_offset_form(self):
        assert parse_time("+2h") == 7200.0
        assert parse_time("+90s") == parse_time("90s") == parse_time(90)

    def test_parse_time_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_time("+later")


class TestSampleFromSpec:
    def test_plain_number_passes_through(self, rng):
        assert sample_from_spec(3.5, rng) == 3.5

    def test_value_mapping(self, rng):
        assert sample_from_spec({"value": 7}, rng) == 7.0

    def test_uniform_respects_bounds(self, rng):
        draws = [
            sample_from_spec({"distribution": "uniform", "min": 2, "max": 5}, rng)
            for _ in range(50)
        ]
        assert all(2 <= d <= 5 for d in draws)

    def test_normal_is_clipped(self, rng):
        spec = {"distribution": "normal", "min": 0, "max": 1, "stddev": 100}
        draws = [sample_from_spec(spec, rng) for _ in range(50)]
        assert all(0 <= d <= 1 for d in draws)

    def test_exponential_positive(self, rng):
        spec = {"distribution": "exponential", "mean": 2.0}
        assert sample_from_spec(spec, rng) > 0

    def test_unknown_distribution(self, rng):
        with pytest.raises(ValueError, match="unknown distribution"):
            sample_from_spec({"distribution": "weibull"}, rng)

    def test_inverted_bounds(self, rng):
        with pytest.raises(ValueError, match="min <= max"):
            sample_from_spec({"distribution": "uniform", "min": 5, "max": 2}, rng)

    def test_non_mapping_rejected(self, rng):
        with pytest.raises(TypeError):
            sample_from_spec("lots", rng)


class TestEntryValidation:
    def test_rate_change_normalizes_at(self):
        assert RateChange(at="+1m", rate=4.0).at == 60.0

    def test_ramp_requires_positive_duration(self):
        with pytest.raises(ValueError, match="duration must be positive"):
            RateRamp(at=0.0, duration=0.0, to_rate=5.0)

    def test_burst_count_floor(self):
        with pytest.raises(ValueError, match="count must be >= 1"):
            Burst(at=1.0, count=0)

    def test_vm_fault_negative_index(self):
        with pytest.raises(ValueError, match="vm_index"):
            VmFault(at=1.0, vm_index=-1)

    def test_vm_fault_downtime_string(self):
        assert VmFault(at=1.0, vm_index=0, downtime="2m").downtime == 120.0

    def test_drift_parses_duration_string(self):
        drift = Drift(at="+5s", vm_index=0, duration="10s", factor=0.5)
        assert drift.at == 5.0 and drift.duration == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"metric": "cpu", "op": ">", "threshold": 1, "action": "rebalance"},
            {"metric": "imbalance", "op": "==", "threshold": 1, "action": "rebalance"},
            {"metric": "imbalance", "op": ">", "threshold": 1, "action": "explode"},
            {
                "metric": "imbalance",
                "op": ">",
                "threshold": math.nan,
                "action": "rebalance",
            },
        ],
    )
    def test_trigger_validation(self, kwargs):
        with pytest.raises(ValueError):
            Trigger(**kwargs)

    def test_trigger_holds_all_ops(self):
        assert Trigger("imbalance", ">", 2.0, "rebalance").holds(3.0)
        assert Trigger("imbalance", ">=", 2.0, "rebalance").holds(2.0)
        assert Trigger("pending", "<", 2.0, "scale_down").holds(1.0)
        assert Trigger("pending", "<=", 2.0, "scale_down").holds(2.0)
        assert not Trigger("imbalance", ">", 2.0, "rebalance").holds(2.0)


class TestTimeline:
    def test_rate_entries_require_base_rate(self):
        with pytest.raises(ValueError, match="no base_rate"):
            Timeline(entries=(RateChange(at=1.0, rate=2.0),))

    def test_base_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="base_rate"):
            Timeline(base_rate=0.0)

    def test_rejects_unknown_entry(self):
        with pytest.raises(TypeError, match="unknown timeline entry"):
            Timeline(entries=("burst at noon",))

    def test_without_faults_strips_faults_and_renames(self):
        tl = Timeline(
            base_rate=2.0,
            entries=(
                Burst(at=1.0, count=5),
                VmFault(at=2.0, vm_index=0, downtime=1.0),
                Drift(at=3.0, vm_index=1, duration=2.0, factor=0.5),
            ),
            name="storm",
        )
        calm = tl.without_faults()
        assert calm.name == "storm-calm"
        assert calm.fault_entries == ()
        assert len(calm.entries) == 1
        assert tl.fault_entries == tl.entries[1:]

    def test_compile_is_deterministic(self):
        tl = Timeline(
            base_rate=4.0,
            entries=(
                RateRamp(
                    at=1.0,
                    duration=2.0,
                    to_rate={"distribution": "uniform", "min": 6, "max": 9},
                ),
                VmFault(
                    at=2.0,
                    vm_index=1,
                    downtime={"distribution": "uniform", "min": 1, "max": 3},
                ),
            ),
        )
        a, b = tl.compile(4, seed=7), tl.compile(4, seed=7)
        assert a.fault_plan == b.fault_plan
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        np.testing.assert_array_equal(
            a.arrivals.sample(rng_a, 50), b.arrivals.sample(rng_b, 50)
        )
        other = tl.compile(4, seed=8)
        assert other.fault_plan != a.fault_plan

    def test_entry_streams_are_independent(self):
        fault = VmFault(
            at=2.0,
            vm_index=0,
            downtime={"distribution": "uniform", "min": 1, "max": 3},
        )
        alone = Timeline(entries=(fault,)).compile(2, seed=3)
        with_more = Timeline(
            entries=(fault, VmFault(at=5.0, vm_index=1, downtime=1.0))
        ).compile(2, seed=3)
        assert alone.fault_plan[0] == with_more.fault_plan[0]

    def test_overlapping_ramps_rejected(self):
        tl = Timeline(
            base_rate=2.0,
            entries=(
                RateRamp(at=1.0, duration=5.0, to_rate=8.0),
                RateChange(at=3.0, rate=1.0),
            ),
        )
        with pytest.raises(ValueError, match="overlap"):
            tl.compile(2, seed=0)

    def test_fault_plan_kinds(self):
        tl = Timeline(
            entries=(
                VmFault(at=1.0, vm_index=0, downtime=2.0),
                Drift(at=2.0, vm_index=1, duration=3.0, factor=0.5),
            )
        )
        compiled = tl.compile(2, seed=0)
        assert isinstance(compiled.fault_plan[0], VmFailure)
        assert isinstance(compiled.fault_plan[1], VmSlowdown)
        assert compiled.arrivals is None
        assert compiled.first_fault_time == 1.0

    def test_first_fault_time_nan_without_faults(self):
        compiled = Timeline(base_rate=1.0).compile(2, seed=0)
        assert math.isnan(compiled.first_fault_time)

    def test_overlapping_downtimes_rejected_at_compile(self):
        tl = Timeline(
            entries=(
                VmFault(at=1.0, vm_index=0, downtime=10.0),
                VmFault(at=5.0, vm_index=0, downtime=2.0),
            )
        )
        with pytest.raises(ValueError, match="before recovering"):
            tl.compile(2, seed=0)

    def test_fault_index_out_of_range(self):
        tl = Timeline(entries=(VmFault(at=1.0, vm_index=9),))
        with pytest.raises(ValueError):
            tl.compile(2, seed=0)

    def test_to_dict_round_trip(self):
        tl = Timeline(
            base_rate=3.0,
            entries=(
                RateChange(at="+1m", rate=5.0),
                RateRamp(at="+2m", duration="30s", to_rate={"value": 8}),
                Burst(at="+3m", count=10),
                VmFault(at="+4m", vm_index=1, downtime="20s"),
                Drift(at="+5m", vm_index=2, duration=15.0, factor=0.25),
            ),
            triggers=(Trigger("imbalance", ">", 2.5, "rebalance", once=False),),
            name="round-trip",
        )
        rebuilt = timeline_from_dict(tl.to_dict())
        assert rebuilt == tl
        assert rebuilt.to_dict() == tl.to_dict()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown timeline entry kind"):
            timeline_from_dict({"entries": [{"kind": "meteor-strike", "at": 1.0}]})


class TestTimelineArrivals:
    def _arrivals(self, tl, seed=0, num_vms=4):
        return tl.compile(num_vms, seed=seed).arrivals

    def test_times_sorted_nonnegative(self):
        tl = Timeline(
            base_rate=5.0,
            entries=(RateRamp(at=2.0, duration=4.0, to_rate=20.0),),
        )
        times = self._arrivals(tl).sample(np.random.default_rng(1), 200)
        assert times.shape == (200,)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0

    def test_rate_change_shifts_density(self):
        slow = Timeline(base_rate=1.0)
        fast = Timeline(base_rate=1.0, entries=(RateChange(at=5.0, rate=50.0),))
        t_slow = self._arrivals(slow).sample(np.random.default_rng(2), 100)
        t_fast = self._arrivals(fast).sample(np.random.default_rng(2), 100)
        assert t_fast[-1] < t_slow[-1]

    def test_burst_lands_at_instant(self):
        tl = Timeline(base_rate=0.5, entries=(Burst(at=3.0, count=40),))
        times = self._arrivals(tl).sample(np.random.default_rng(3), 60)
        assert np.count_nonzero(times == 3.0) >= 40 - np.count_nonzero(times < 3.0)
        assert np.count_nonzero(times == 3.0) > 0

    def test_final_piece_must_be_unbounded(self):
        with pytest.raises(ValueError, match="final rate piece"):
            TimelineArrivals(((0.0, 10.0, 2.0, 0.0),))

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError, match="at least one piece"):
            TimelineArrivals(())
