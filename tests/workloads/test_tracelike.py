"""Trace-like workload and diurnal arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import spawn_rng
from repro.workloads.arrivals import DiurnalArrivals
from repro.workloads.tracelike import (
    FLEET_TIERS,
    LENGTH_CLIP,
    diurnal_arrivals_for,
    tracelike_scenario,
)


class TestTracelikeScenario:
    def test_heavy_tail_statistics(self):
        scenario = tracelike_scenario(40, 2000, seed=1)
        lengths = scenario.arrays().cloudlet_length
        # Heavy tail: p99 at least an order of magnitude over the median.
        p50, p99 = np.percentile(lengths, [50, 99])
        assert p99 / p50 > 10
        assert lengths.min() >= LENGTH_CLIP[0]
        assert lengths.max() <= LENGTH_CLIP[1]

    def test_fleet_is_tiered(self):
        scenario = tracelike_scenario(200, 10, seed=2)
        tiers = set(float(m) for m in scenario.arrays().vm_mips)
        assert tiers <= set(FLEET_TIERS)
        assert len(tiers) == 3

    def test_tier_shares_roughly_respected(self):
        scenario = tracelike_scenario(1000, 10, seed=3)
        mips = scenario.arrays().vm_mips
        share_slow = float((mips == 500.0).mean())
        assert 0.35 < share_slow < 0.65

    def test_deterministic(self):
        assert tracelike_scenario(20, 50, seed=9).cloudlets == tracelike_scenario(
            20, 50, seed=9
        ).cloudlets

    def test_validation(self):
        with pytest.raises(ValueError):
            tracelike_scenario(0, 10)

    def test_runs_through_simulator(self):
        from repro.cloud.fast import FastSimulation
        from repro.schedulers import GreedyMinCompletionScheduler

        scenario = tracelike_scenario(16, 200, seed=4)
        result = FastSimulation(scenario, GreedyMinCompletionScheduler(), seed=4).run()
        assert result.makespan > 0


class TestDiurnalArrivals:
    def test_rate_modulates_over_period(self):
        proc = DiurnalArrivals(base_rate=10.0, period=100.0, amplitude=0.8)
        assert proc.rate_at(25.0) == pytest.approx(18.0)  # peak at period/4
        assert proc.rate_at(75.0) == pytest.approx(2.0)  # trough
        assert proc.rate_at(0.0) == pytest.approx(10.0)

    def test_sample_sorted_and_mean_rate_close_to_base(self):
        proc = DiurnalArrivals(base_rate=10.0, period=50.0, amplitude=0.8)
        times = proc.sample(spawn_rng(1, "d"), 5000)
        assert (np.diff(times) >= 0).all()
        measured = 5000 / times[-1]
        # Over whole periods the sine integrates away: mean rate ≈ base.
        assert measured == pytest.approx(10.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(base_rate=0.0, period=10.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(base_rate=1.0, period=10.0, amplitude=1.0)

    def test_arrivals_cluster_at_peaks(self):
        proc = DiurnalArrivals(base_rate=10.0, period=100.0, amplitude=0.9)
        times = proc.sample(spawn_rng(2, "d"), 4000)
        phase = np.mod(times, 100.0)
        peak_half = ((phase > 0) & (phase < 50)).mean()  # sin > 0 half
        assert peak_half > 0.6


class TestDiurnalForScenario:
    def test_rate_sized_to_utilization(self):
        scenario = tracelike_scenario(30, 500, seed=2)
        proc = diurnal_arrivals_for(scenario, mean_utilization=0.5)
        arr = scenario.arrays()
        implied_util = proc.base_rate * arr.cloudlet_length.mean() / (
            (arr.vm_mips * arr.vm_pes).sum()
        )
        assert implied_util == pytest.approx(0.5)

    def test_validation(self):
        scenario = tracelike_scenario(10, 50, seed=2)
        with pytest.raises(ValueError):
            diurnal_arrivals_for(scenario, mean_utilization=1.5)
