"""Scenario persistence round trips."""

from __future__ import annotations

import json

import pytest

from repro.workloads.traces import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


class TestRoundTrip:
    def test_dict_round_trip(self, tiny_scenario):
        data = scenario_to_dict(tiny_scenario)
        restored = scenario_from_dict(data)
        assert restored == tiny_scenario

    def test_file_round_trip(self, tiny_scenario, tmp_path):
        path = save_scenario(tiny_scenario, tmp_path / "sub" / "scenario.json")
        assert path.exists()
        restored = load_scenario(path)
        assert restored == tiny_scenario

    def test_heterogeneous_round_trip(self, small_hetero, tmp_path):
        path = save_scenario(small_hetero, tmp_path / "h.json")
        assert load_scenario(path) == small_hetero

    def test_file_is_json(self, tiny_scenario, tmp_path):
        path = save_scenario(tiny_scenario, tmp_path / "s.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert data["name"] == "tiny"

    def test_unknown_version_rejected(self, tiny_scenario):
        data = scenario_to_dict(tiny_scenario)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            scenario_from_dict(data)

    def test_restored_scenario_simulates_identically(self, tiny_scenario, tmp_path):
        from repro.cloud.simulation import CloudSimulation
        from repro.schedulers import RoundRobinScheduler

        path = save_scenario(tiny_scenario, tmp_path / "s.json")
        restored = load_scenario(path)
        a = CloudSimulation(tiny_scenario, RoundRobinScheduler(), seed=0).run()
        b = CloudSimulation(restored, RoundRobinScheduler(), seed=0).run()
        assert a.makespan == b.makespan
        assert a.total_cost == b.total_cost
