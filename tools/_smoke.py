"""Shared plumbing for the ``tools/`` smoke scripts.

Every smoke script used to re-implement the same three fragments: making
``repro`` importable from a source checkout, building an argparse parser
whose description is the script's first docstring line, and exiting with
``main()``'s return code.  They now live here once:

* importing this module puts ``<repo>/src`` on ``sys.path`` when
  ``repro`` is not already importable, so ``python tools/<x>_smoke.py``
  works with or without ``PYTHONPATH=src`` — import it *before* any
  ``repro`` import;
* :func:`smoke_parser` builds the standard parser;
* :func:`run` is the ``if __name__ == "__main__"`` tail.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable


def ensure_repro_importable() -> None:
    """Put the checkout's ``src/`` first on ``sys.path`` if needed."""
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        if src not in sys.path:
            sys.path.insert(0, src)


def smoke_parser(doc: "str | None") -> argparse.ArgumentParser:
    """The standard smoke parser: description = first docstring line."""
    description = (doc or "").strip().splitlines()[0] if doc else None
    return argparse.ArgumentParser(description=description)


def run(main: Callable[[], int]) -> None:
    """Exit the process with ``main()``'s return code."""
    sys.exit(main())


ensure_repro_importable()
