#!/usr/bin/env python
"""Benchmark regression gauntlet: fresh run vs the committed record.

Seeds ROADMAP item 4.  Re-runs the paper-scale streaming sweep at a
reduced scale (default 2M cloudlets, serial-only, best of three rounds)
and diffs each scheduler's throughput and peak RSS against the
committed 10M rows in ``BENCH_paperscale.json``:

* **throughput** — fail when the fresh cloudlets/s drops more than 40%
  below the committed ``serial_throughput_cloudlets_per_s``;
* **peak RSS** — fail when the fresh high-water mark grows more than 10%
  above the committed ``serial_peak_rss_mb``.

The throughput tolerance is wide because the comparison is *absolute*
against rows recorded on a reference container: a shared runner is
legitimately 20–30% slower run to run, and algorithmic drift is already
caught exactly by the decision-hash gauntlet (``tools/gauntlet.py``) —
this gate exists to catch order-of-magnitude perf regressions (a
dropped vectorisation, an accidental O(n) buffer), which blow far past
40%.

Both columns are scale-invariant on the streaming path (per-chunk work
is flat and assigner state is O(num_vms + chunk_size)), which is what
makes a 2M run a fair proxy for the committed 10M baseline.  The CI
step is **blocking**: every row prints scheduler, metric, committed vs
fresh, and any breached tolerance fails the job.  The tolerances are
generous precisely so shared-runner noise stays inside them — a trip
means a real regression (or an intentional change: re-record
``BENCH_paperscale.json`` locally and commit it with the cause).

Usage::

    PYTHONPATH=src python tools/bench_regression.py [--cloudlets 2000000]
        [--throughput-tolerance 0.40] [--rss-tolerance 0.10]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from _smoke import run, smoke_parser  # noqa: E402 - puts src/ on sys.path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "benchmarks"))

from bench_paperscale_homogeneous import (  # noqa: E402
    TENX_CLOUDLETS,
    sweep_rows,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = smoke_parser(__doc__)
    parser.add_argument("--cloudlets", type=int, default=2_000_000)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_REPO / "BENCH_paperscale.json",
        help="committed record to diff against",
    )
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=0.40,
        help="max fractional throughput drop vs the committed rows",
    )
    parser.add_argument(
        "--rss-tolerance",
        type=float,
        default=0.10,
        help="max fractional peak-RSS growth vs the committed rows",
    )
    args = parser.parse_args(argv)

    committed = json.loads(args.baseline.read_text())
    point = next(
        p for p in committed["points"] if p["num_cloudlets"] == TENX_CLOUDLETS
    )
    baseline = {row["scheduler"]: row for row in point["rows"]}

    # Best-of-3 (the committed rows are best-of-2): one extra round on
    # the cheap reduced-scale run keeps a noisy-neighbour round from
    # tripping the now-blocking gate, and a single cold round would
    # charge first-run warmup against the fast schedulers.
    fresh = sweep_rows(args.cloudlets, shards=None, rounds=3)
    failures: list[str] = []
    for row in fresh:
        name = row["scheduler"]
        base = baseline.get(name)
        if base is None:
            continue
        tp_fresh = row["serial_throughput_cloudlets_per_s"]
        tp_committed = base["serial_throughput_cloudlets_per_s"]
        rss_fresh = row["serial_peak_rss_mb"]
        rss_committed = base["serial_peak_rss_mb"]
        tp_ok = tp_fresh >= tp_committed * (1 - args.throughput_tolerance)
        rss_ok = rss_fresh <= rss_committed * (1 + args.rss_tolerance)
        print(
            f"{name:12s} throughput {tp_fresh:>12,}/s vs {tp_committed:>12,}/s "
            f"[{'ok' if tp_ok else 'REGRESSED'}]  "
            f"peak RSS {rss_fresh:.0f} MiB vs {rss_committed:.0f} MiB "
            f"[{'ok' if rss_ok else 'GREW'}]"
        )
        if not tp_ok:
            failures.append(
                f"{name}: throughput {tp_fresh:,}/s is more than "
                f"{args.throughput_tolerance:.0%} below committed {tp_committed:,}/s"
            )
        if not rss_ok:
            failures.append(
                f"{name}: peak RSS {rss_fresh:.1f} MiB is more than "
                f"{args.rss_tolerance:.0%} above committed {rss_committed:.1f} MiB"
            )

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench regression OK")
    return 0


if __name__ == "__main__":
    run(main)
