#!/usr/bin/env python
"""Cold-vs-warm result-cache smoke: the CI gate for the cache contract.

Runs the fig6b quick sweep three times against one cache directory:

1. **cold, serial** — populates the cache; telemetry must report all
   misses and no hits.
2. **warm, serial** — must report all hits, produce records byte-equal
   to the cold run's (wall-clock fields included: a hit replays the
   cold run's measured value), and be measurably faster.
3. **warm, ``--workers 2``** — pins parent-side hit resolution: the
   parent resolves every cell before dispatch, so the run is again
   all-hit with byte-equal records.

Exit status 0 on success; any contract violation raises.

Usage::

    PYTHONPATH=src python tools/cache_smoke.py [--min-speedup 5.0]
"""

from __future__ import annotations

import tempfile
import time

from _smoke import run, smoke_parser  # noqa: E402 - puts src/ on sys.path
from repro.cache import ResultCache
from repro.experiments.figures import get_experiment
from repro.experiments.runner import run_sweep
from repro.obs.telemetry import TELEMETRY


def sweep_kwargs():
    definition = get_experiment("fig6b")
    config = definition.config("quick")
    return dict(
        scenario_factory=definition.scenario_factory(),
        scheduler_factories=config.make_schedulers(definition.schedulers),
        vm_counts=config.vm_counts,
        num_cloudlets=config.num_cloudlets,
        seeds=config.seeds,
        engine=definition.engine,
    )


def timed_sweep(label: str, *, cache: ResultCache, workers: int | None = None):
    """One telemetry-instrumented sweep; returns (records, counters, seconds)."""
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        t0 = time.perf_counter()
        records = run_sweep(**sweep_kwargs(), cache=cache, workers=workers)
        elapsed = time.perf_counter() - t0
        counters = TELEMETRY.snapshot().counters
    finally:
        TELEMETRY.reset()
        TELEMETRY.disable()
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    print(
        f"{label:22s} {elapsed:7.2f}s  cells={len(records)} "
        f"hits={hits} misses={misses}"
    )
    return records, counters, elapsed


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def main(argv: list[str] | None = None) -> int:
    parser = smoke_parser(__doc__)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required cold/warm wall-clock ratio (default: 5.0)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="cache-smoke-") as root:
        cache = ResultCache(root)

        cold, cold_counters, cold_s = timed_sweep("cold serial", cache=cache)
        check(cold_counters.get("cache.hits", 0) == 0, "cold run reported hits")
        check(
            cold_counters.get("cache.misses", 0) == len(cold),
            "cold run did not miss every cell",
        )
        check(
            cold_counters.get("cache.bytes_written", 0) > 0,
            "cold run wrote no bytes",
        )

        warm, warm_counters, warm_s = timed_sweep("warm serial", cache=cache)
        check(warm == cold, "warm serial records differ from cold")
        check(
            warm_counters.get("cache.hits", 0) == len(cold),
            "warm serial run was not all-hit",
        )
        check(
            warm_counters.get("cache.misses", 0) == 0,
            "warm serial run reported misses",
        )
        check(
            warm_s * args.min_speedup <= cold_s,
            f"warm not ≥{args.min_speedup}× faster: "
            f"cold={cold_s:.3f}s warm={warm_s:.3f}s",
        )

        par, par_counters, _ = timed_sweep("warm --workers 2", cache=cache, workers=2)
        check(par == cold, "warm parallel records differ from cold")
        check(
            par_counters.get("cache.hits", 0) == len(cold),
            "warm parallel run was not all-hit (parent-side resolution broken?)",
        )
        check(
            par_counters.get("cache.misses", 0) == 0,
            "warm parallel run reported misses",
        )

    print(f"OK: warm replay {cold_s / max(warm_s, 1e-9):.1f}× faster than cold, "
          "records byte-equal, parallel warm all-hit")
    return 0


if __name__ == "__main__":
    run(main)
