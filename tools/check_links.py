#!/usr/bin/env python3
"""Check relative links in the project's markdown documentation.

Stdlib-only, used by the CI docs job::

    python tools/check_links.py README.md EXPERIMENTS.md docs/*.md

For every ``[text](target)`` link in the given files, verifies that a
relative ``target`` exists on disk (resolved against the linking file's
directory, with ``#anchors`` stripped).  External schemes
(``http(s)://``, ``mailto:``) and pure in-page anchors are skipped —
this guards the repo's internal cross-references, not the web.

Exits 1 and lists every broken link if any target is missing.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — target must not itself contain parentheses/whitespace.
_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
#: schemes we never resolve locally.
_EXTERNAL = ("http://", "https://", "mailto:")
#: fenced code blocks are documentation *examples*, not navigation.
_FENCE = re.compile(r"^(```|~~~)")


def iter_links(path: Path):
    """Yield (line_number, raw_target) for each local link in ``path``."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            yield lineno, target


def check_file(path: Path) -> list[str]:
    """Broken-link messages for one markdown file."""
    problems = []
    for lineno, target in iter_links(path):
        local = target.split("#", 1)[0]
        if not local:
            continue
        resolved = (path.parent / local).resolve()
        if not resolved.exists():
            problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.is_file():
            problems.append(f"{path}: file not found")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} file(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
