#!/usr/bin/env python
"""Control-loop smoke: the CI gate for the MAPE-K closed loop.

Runs one seeded chaos storm through the online engine and asserts the
contract the docs promise:

1. **Efficacy** — the controlled arm's makespan degradation is strictly
   below the uncontrolled arm's, and its SLA-violation count is no
   higher.
2. **Determinism** — two identical controlled runs produce bit-identical
   assignments, timings and control summaries.
3. **Ablation** — with an inert control config (thresholds that never
   fire, no standby pool) the controlled broker reproduces the plain
   :class:`~repro.cloud.online.OnlineBroker` schedule byte-for-byte, and
   passing the new keyword defaults explicitly changes nothing.

Prints the storm table; exit status 0 on success, any contract violation
raises.

Usage::

    PYTHONPATH=src python tools/control_smoke.py [--vms 10] [--cloudlets 80]
"""

from __future__ import annotations

import hashlib

import numpy as np

from _smoke import run, smoke_parser  # noqa: E402 - puts src/ on sys.path

from repro.cloud.chaos import demo_storm_timeline, run_storm_suite
from repro.cloud.control import ControlConfig
from repro.cloud.online import OnlineCloudSimulation
from repro.schedulers.online import OnlineGreedyMCT, OnlineLeastLoaded
from repro.workloads.heterogeneous import heterogeneous_scenario

SLA_SECONDS = 30.0

#: thresholds that can never fire: attaches the loop, takes no action.
INERT_CONTROL = ControlConfig(imbalance_threshold=1e9, standby_vms=0)


def schedule_fingerprint(result) -> str:
    """Digest of everything deterministic about a run's schedule.

    Excludes wall-clock scheduling time and the ``info`` dict (which
    records *which* machinery ran, not what it decided).
    """
    h = hashlib.sha256()
    for arr in (
        result.assignment,
        result.submission_times,
        result.start_times,
        result.finish_times,
        result.exec_times,
        result.costs,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(
        repr(
            (result.makespan, result.time_imbalance, result.total_cost)
        ).encode()
    )
    return h.hexdigest()


def check_efficacy(scenario, control) -> None:
    report = run_storm_suite(
        scenario,
        {"greedy-mct": OnlineGreedyMCT, "leastloaded": OnlineLeastLoaded},
        demo_storm_timeline(scenario.num_vms),
        control,
        seeds=(0, 1),
        sla_seconds=SLA_SECONDS,
    )
    controlled = report.mean_degradation("controlled")
    uncontrolled = report.mean_degradation("uncontrolled")
    sla_c = report.sla_violation_count("controlled")
    sla_u = report.sla_violation_count("uncontrolled")
    for row in report.to_rows():
        print(row)
    print(
        f"degradation: controlled {controlled:.4f} vs uncontrolled "
        f"{uncontrolled:.4f}; SLA violations {sla_c} vs {sla_u}"
    )
    assert controlled < uncontrolled, (
        f"control loop failed to reduce degradation "
        f"({controlled:.4f} >= {uncontrolled:.4f})"
    )
    assert sla_c <= sla_u, (
        f"control loop increased SLA violations ({sla_c} > {sla_u})"
    )


def check_determinism(scenario, control) -> None:
    timeline = demo_storm_timeline(scenario.num_vms)

    def run():
        return OnlineCloudSimulation(
            scenario,
            OnlineGreedyMCT(),
            seed=0,
            timeline=timeline,
            control=control,
        ).run()

    first, second = run(), run()
    assert schedule_fingerprint(first) == schedule_fingerprint(second), (
        "two identical controlled runs diverged"
    )
    assert first.info["control"] == second.info["control"], (
        "control summaries diverged between identical runs"
    )
    print(f"determinism: two controlled runs bit-identical "
          f"({schedule_fingerprint(first)[:12]}…)")


def check_ablation(scenario) -> None:
    plain = OnlineCloudSimulation(scenario, OnlineGreedyMCT(), seed=0).run()
    explicit = OnlineCloudSimulation(
        scenario, OnlineGreedyMCT(), seed=0, timeline=None, control=None,
        standby_vms=0,
    ).run()
    inert = OnlineCloudSimulation(
        scenario, OnlineGreedyMCT(), seed=0, control=INERT_CONTROL
    ).run()
    want = schedule_fingerprint(plain)
    assert schedule_fingerprint(explicit) == want, (
        "explicit default kwargs changed the plain online schedule"
    )
    assert schedule_fingerprint(inert) == want, (
        "inert control loop perturbed the schedule"
    )
    assert sum(inert.info["control"]["actions"].values()) == 0, (
        f"inert control config still acted: {inert.info['control']}"
    )
    print("ablation: inert control reproduces the plain schedule byte-for-byte")


def main(argv=None) -> int:
    parser = smoke_parser(__doc__)
    parser.add_argument("--vms", type=int, default=10)
    parser.add_argument("--cloudlets", type=int, default=80)
    args = parser.parse_args(argv)

    scenario = heterogeneous_scenario(args.vms, args.cloudlets, seed=5)
    control = ControlConfig(
        cadence=0.5,
        cooldown=2.0,
        imbalance_threshold=2.0,
        scale_up_backlog=1.5,
        standby_vms=2,
        sla_seconds=SLA_SECONDS,
    )
    check_efficacy(scenario, control)
    check_determinism(scenario, control)
    check_ablation(scenario)
    print("control smoke OK")
    return 0


if __name__ == "__main__":
    run(main)
