#!/usr/bin/env python
"""Full-registry scheduler gauntlet: every scheduler, five scenario families.

Closes ROADMAP item 4.  One driver runs **every** registry scheduler
through the repo's execution surfaces and records, per (family,
scheduler) cell, a SHA-256 *decision hash* plus the deterministic
metrics — then diffs a fresh run against the committed record
(``BENCH_gauntlet.json``) with **blocking** gates:

* **decision drift** — any change to an assignment hash (or, on the
  streaming family, the per-VM accumulator bytes) is a hard failure.
  Decisions are seeded and machine-independent; a drifted hash means
  RNG draw order or float arithmetic changed.
* **makespan drift** — same contract, same hardness: the metrics are
  pure functions of the decisions.
* **throughput** — streaming rows gate on throughput *relative to
  basetest in the same run* (machine-invariant; absolute cloudlets/s is
  recorded for information).  Fail when the relative throughput drops
  more than 25% below the committed ratio.
* **peak RSS** — fail when the run's high-water mark grows more than
  10% above the committed record.

Families:

* ``homog`` / ``hetero`` — the paper's batch conditions through
  :class:`~repro.cloud.fast.FastSimulation`;
* ``online`` — Poisson arrivals through
  :class:`~repro.cloud.online.OnlineCloudSimulation`, each batch
  scheduler wrapped in a per-wave
  :class:`~repro.schedulers.online.BatchAdapter`;
* ``faulty`` — a seeded :func:`~repro.cloud.chaos.generate_fault_plan`
  chaos plan through :func:`~repro.cloud.resilience.run_resilient`
  (scheduler-driven re-placement of bounced cloudlets);
* ``stream`` — the paper-scale streaming path
  (:class:`~repro.cloud.fast.StreamingSimulation`, over a heterogeneous
  stream whose uneven fleet keeps the hashes scheduler-specific) for the
  native streaming schedulers; there is no per-cloudlet assignment in
  bounded mode, so the decision hash covers ``vm_finish_times`` +
  ``vm_costs``.

Usage::

    PYTHONPATH=src python tools/gauntlet.py run [--out BENCH_gauntlet.json]
    PYTHONPATH=src python tools/gauntlet.py check [--baseline BENCH_gauntlet.json]
        [--throughput-tolerance 0.25] [--rss-tolerance 0.10]

``check`` replays the baseline's recorded config (scales, seeds), so a
committed smoke-scale record diffs directly in CI.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path

from _smoke import run, smoke_parser  # noqa: E402 - puts src/ on sys.path

import numpy as np  # noqa: E402

from repro.cloud.chaos import ChaosConfig, generate_fault_plan  # noqa: E402
from repro.cloud.fast import (  # noqa: E402
    FastSimulation,
    StreamingSimulation,
    peak_rss_bytes,
)
from repro.cloud.online import OnlineCloudSimulation  # noqa: E402
from repro.cloud.resilience import run_resilient  # noqa: E402
from repro.core.rng import spawn_rng  # noqa: E402
from repro.schedulers import SCHEDULER_REGISTRY, make_scheduler  # noqa: E402
from repro.schedulers.online import BatchAdapter  # noqa: E402
from repro.schedulers.streaming import (  # noqa: E402
    STREAMING_SCHEDULERS,
    make_streaming_scheduler,
)
from repro.workloads.arrivals import PoissonArrivals  # noqa: E402
from repro.workloads.heterogeneous import heterogeneous_scenario  # noqa: E402
from repro.workloads.homogeneous import homogeneous_scenario  # noqa: E402
from repro.workloads.streaming import heterogeneous_stream  # noqa: E402

_REPO = Path(__file__).resolve().parent.parent

RECORD_VERSION = 1

#: population/iteration budgets keeping metaheuristic cells fast while
#: still exercising every inner loop (mirrors the golden-pin configs).
GAUNTLET_KWARGS = {
    "annealing": {"iterations": 500},
    "antcolony": {"num_ants": 5, "max_iterations": 2},
    "cuckoo-sos": {"ecosystem_size": 6, "max_iterations": 4},
    "ga": {"population_size": 8, "generations": 5},
    "gsa": {"num_agents": 6, "max_iterations": 5},
    "pso": {"num_particles": 6, "max_iterations": 5},
    "psogsa": {"num_particles": 6, "max_iterations": 5},
}

#: fixed smoke-scale config; ``check`` replays the committed record's
#: copy of this, so re-recording at another scale keeps CI coherent.
DEFAULT_CONFIG = {
    "homog": {"num_vms": 8, "num_cloudlets": 40, "seed": 11},
    "hetero": {"num_vms": 10, "num_cloudlets": 60, "seed": 11},
    "online": {"num_vms": 6, "num_cloudlets": 40, "seed": 5, "rate": 2.0},
    "faulty": {"num_vms": 8, "num_cloudlets": 50, "seed": 23},
    "stream": {
        "num_vms": 8,
        "num_cloudlets": 200_000,
        "seed": 7,
        "chunk_size": 8192,
        "rounds": 3,
    },
}

FAMILIES = tuple(DEFAULT_CONFIG)


def _scheduler(name: str):
    return make_scheduler(name, **GAUNTLET_KWARGS.get(name, {}))


def decision_hash(*arrays: np.ndarray) -> str:
    """SHA-256 over the canonicalised decision arrays.

    Assignments are cast to a fixed dtype first so the hash pins the
    *decisions*, not whichever integer width a scheduler happened to
    return.
    """
    digest = hashlib.sha256()
    for array in arrays:
        canonical = (
            np.ascontiguousarray(array, dtype=np.int64)
            if np.issubdtype(np.asarray(array).dtype, np.integer)
            else np.ascontiguousarray(array, dtype=np.float64)
        )
        digest.update(canonical.tobytes())
    return digest.hexdigest()


def _batch_rows(family: str, cfg: dict) -> list[dict]:
    scenario_factory = (
        homogeneous_scenario if family == "homog" else heterogeneous_scenario
    )
    scenario = scenario_factory(cfg["num_vms"], cfg["num_cloudlets"], seed=cfg["seed"])
    rows = []
    for name in sorted(SCHEDULER_REGISTRY):
        result = FastSimulation(scenario, _scheduler(name), seed=cfg["seed"]).run()
        rows.append(
            {
                "family": family,
                "scheduler": name,
                "decision_sha256": decision_hash(result.assignment),
                "makespan": result.makespan,
            }
        )
    return rows


def _online_rows(cfg: dict) -> list[dict]:
    scenario = heterogeneous_scenario(
        cfg["num_vms"], cfg["num_cloudlets"], seed=cfg["seed"]
    )
    rows = []
    for name in sorted(SCHEDULER_REGISTRY):
        result = OnlineCloudSimulation(
            scenario,
            BatchAdapter(_scheduler(name)),
            arrivals=PoissonArrivals(rate=cfg["rate"]),
            seed=cfg["seed"],
        ).run()
        rows.append(
            {
                "family": "online",
                "scheduler": name,
                "decision_sha256": decision_hash(result.assignment),
                "makespan": result.makespan,
            }
        )
    return rows


def _faulty_rows(cfg: dict) -> list[dict]:
    scenario = heterogeneous_scenario(
        cfg["num_vms"], cfg["num_cloudlets"], seed=cfg["seed"]
    )
    baseline = FastSimulation(
        scenario, make_scheduler("basetest"), seed=cfg["seed"]
    ).run()
    plan = generate_fault_plan(
        scenario,
        baseline.makespan,
        ChaosConfig(num_vm_failures=1, num_stragglers=1),
        spawn_rng(cfg["seed"], "gauntlet/faults"),
    )
    rows = []
    for name in sorted(SCHEDULER_REGISTRY):
        result = run_resilient(
            scenario, _scheduler(name), failures=plan, seed=cfg["seed"]
        )
        rows.append(
            {
                "family": "faulty",
                "scheduler": name,
                "decision_sha256": decision_hash(result.assignment),
                "makespan": result.makespan,
            }
        )
    return rows


def _stream_rows(cfg: dict) -> list[dict]:
    rows = []
    for name in sorted(STREAMING_SCHEDULERS):
        best_s = float("inf")
        hashes = set()
        for _ in range(cfg["rounds"]):
            stream = heterogeneous_stream(
                cfg["num_vms"],
                cfg["num_cloudlets"],
                seed=cfg["seed"],
                chunk_size=cfg["chunk_size"],
            )
            t0 = time.perf_counter()
            result = StreamingSimulation(
                stream, make_streaming_scheduler(name), seed=cfg["seed"]
            ).run()
            best_s = min(best_s, time.perf_counter() - t0)
            hashes.add(decision_hash(result.vm_finish_times, result.vm_costs))
        if len(hashes) != 1:
            raise AssertionError(
                f"stream/{name}: rounds disagreed on the decision hash: {hashes}"
            )
        rows.append(
            {
                "family": "stream",
                "scheduler": name,
                "decision_sha256": hashes.pop(),
                "makespan": result.makespan,
                "seconds": round(best_s, 3),
                "throughput_cloudlets_per_s": round(cfg["num_cloudlets"] / best_s),
            }
        )
    basetest_tp = next(
        r["throughput_cloudlets_per_s"] for r in rows if r["scheduler"] == "basetest"
    )
    for row in rows:
        row["relative_throughput"] = round(
            row["throughput_cloudlets_per_s"] / basetest_tp, 4
        )
    return rows


def run_gauntlet(config: dict) -> dict:
    """One full pass over every family; returns the versioned record."""
    rows: list[dict] = []
    for family in FAMILIES:
        cfg = config[family]
        print(f"[gauntlet] {family}: {cfg}", file=sys.stderr)
        if family in ("homog", "hetero"):
            rows.extend(_batch_rows(family, cfg))
        elif family == "online":
            rows.extend(_online_rows(cfg))
        elif family == "faulty":
            rows.extend(_faulty_rows(cfg))
        else:
            rows.extend(_stream_rows(cfg))
    return {
        "version": RECORD_VERSION,
        "config": config,
        "rows": rows,
        "peak_rss_mb": round(peak_rss_bytes() / 2**20, 1),
    }


def diff_records(
    committed: dict,
    fresh: dict,
    throughput_tolerance: float = 0.25,
    rss_tolerance: float = 0.10,
) -> list[str]:
    """Blocking comparison; returns human-readable failure lines."""
    failures: list[str] = []
    if committed.get("version") != fresh.get("version"):
        failures.append(
            f"record version drifted: committed {committed.get('version')!r} "
            f"vs fresh {fresh.get('version')!r} — re-record BENCH_gauntlet.json"
        )
        return failures

    key = lambda r: (r["family"], r["scheduler"])  # noqa: E731
    committed_rows = {key(r): r for r in committed["rows"]}
    fresh_rows = {key(r): r for r in fresh["rows"]}
    for family, name in sorted(committed_rows.keys() - fresh_rows.keys()):
        failures.append(f"{family}/{name}: row missing from the fresh run")
    for family, name in sorted(fresh_rows.keys() - committed_rows.keys()):
        failures.append(
            f"{family}/{name}: new row not in the committed record — "
            "re-record BENCH_gauntlet.json"
        )

    for cell in sorted(committed_rows.keys() & fresh_rows.keys()):
        family, name = cell
        base, new = committed_rows[cell], fresh_rows[cell]
        if new["decision_sha256"] != base["decision_sha256"]:
            failures.append(
                f"{family}/{name}: decision hash drifted "
                f"(committed {base['decision_sha256'][:12]}… vs "
                f"fresh {new['decision_sha256'][:12]}…)"
            )
        if new["makespan"] != base["makespan"]:
            failures.append(
                f"{family}/{name}: makespan drifted "
                f"(committed {base['makespan']!r} vs fresh {new['makespan']!r})"
            )
        if "relative_throughput" in base:
            floor = base["relative_throughput"] * (1 - throughput_tolerance)
            if new["relative_throughput"] < floor:
                failures.append(
                    f"{family}/{name}: relative throughput "
                    f"{new['relative_throughput']:.4f} is more than "
                    f"{throughput_tolerance:.0%} below committed "
                    f"{base['relative_throughput']:.4f} "
                    f"(absolute: {new['throughput_cloudlets_per_s']:,}/s vs "
                    f"{base['throughput_cloudlets_per_s']:,}/s)"
                )

    rss_cap = committed["peak_rss_mb"] * (1 + rss_tolerance)
    if fresh["peak_rss_mb"] > rss_cap:
        failures.append(
            f"peak RSS {fresh['peak_rss_mb']:.1f} MiB is more than "
            f"{rss_tolerance:.0%} above committed {committed['peak_rss_mb']:.1f} MiB"
        )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = smoke_parser(__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("run", help="run the gauntlet and write the record")
    record.add_argument("--out", type=Path, default=_REPO / "BENCH_gauntlet.json")
    record.add_argument("--stream-cloudlets", type=int, default=None)

    check = sub.add_parser("check", help="fresh run diffed against the record")
    check.add_argument(
        "--baseline", type=Path, default=_REPO / "BENCH_gauntlet.json"
    )
    check.add_argument("--throughput-tolerance", type=float, default=0.25)
    check.add_argument("--rss-tolerance", type=float, default=0.10)
    args = parser.parse_args(argv)

    if args.command == "run":
        config = {k: dict(v) for k, v in DEFAULT_CONFIG.items()}
        if args.stream_cloudlets:
            config["stream"]["num_cloudlets"] = args.stream_cloudlets
        record = run_gauntlet(config)
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {len(record['rows'])} rows to {args.out}")
        return 0

    committed = json.loads(args.baseline.read_text())
    fresh = run_gauntlet(committed["config"])
    failures = diff_records(
        committed,
        fresh,
        throughput_tolerance=args.throughput_tolerance,
        rss_tolerance=args.rss_tolerance,
    )
    for row in fresh["rows"]:
        cell = f"{row['family']}/{row['scheduler']}"
        print(f"{cell:24s} {row['decision_sha256'][:12]}…  makespan {row['makespan']:.4f}")
    if failures:
        for failure in failures:
            print(f"GAUNTLET REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"gauntlet OK: {len(fresh['rows'])} cells match the committed record")
    return 0


if __name__ == "__main__":
    run(main)
