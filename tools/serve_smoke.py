#!/usr/bin/env python
"""Serving-layer smoke: the CI gate for SLOs and live/offline bit-identity.

For each servable scheduler, starts the asyncio HTTP service on an
ephemeral port, replays a seeded 50k-request open-loop trace
(:mod:`repro.serve.loadgen`), and asserts the contract docs/serving.md
promises:

1. **No failed requests** — every submission is admitted and answered.
2. **SLO** — p50/p99 latency (measured from each request's *scheduled*
   arrival instant, so queueing counts) and delivered throughput stay
   within the documented budgets.
3. **Bit-identity** — the placements returned live, reordered by
   admission offset, equal an offline
   :class:`~repro.cloud.fast.StreamingSimulation` replay of the same
   cloudlets at several chunk geometries, bit for bit.
4. **Telemetry** — ``serve.requests`` / ``serve.batch_size`` counters
   match the trace exactly and the per-fleet latency gauges are
   populated.

Exit status 0 on success; any contract violation raises.

Usage::

    python tools/serve_smoke.py [--requests 50000] [--rate 1500]
        [--vms 500] [--p50-budget-ms 100] [--p99-budget-ms 750]
"""

from __future__ import annotations

import time

from _smoke import run, smoke_parser  # noqa: E402 - puts src/ on sys.path
from repro import obs
from repro.obs.telemetry import TELEMETRY
from repro.serve import (
    SERVABLE_SCHEDULERS,
    FleetSpec,
    SchedulerService,
    SloSpec,
    TraceSpec,
    assert_bit_identical,
    build_trace,
    replay,
    start_http_server,
)

SEED = 0
CHUNK_SIZES = (4_096, 65_536)


def run_one(name: str, trace, args, slo: SloSpec) -> None:
    spec = FleetSpec(name=name, num_vms=args.vms, scheduler=name, seed=SEED)
    service = SchedulerService()
    service.add_fleet(spec)
    with obs.enabled(True):
        before = TELEMETRY.snapshot()
        with start_http_server(service) as handle:
            report = replay(
                trace, name, handle.host, handle.port,
                time_scale=args.time_scale, max_connections=args.connections,
            )
        diff = TELEMETRY.snapshot().diff(before).to_dict()

    if report.errors:
        raise AssertionError(f"{name}: {report.errors} failed requests")
    violations = slo.violations(report)
    if violations:
        raise AssertionError(f"{name}: SLO violations: {violations}")

    counters, gauges = diff["counters"], diff["gauges"]
    if counters.get("serve.requests") != trace.num_requests:
        raise AssertionError(
            f"{name}: serve.requests counter {counters.get('serve.requests')} "
            f"!= {trace.num_requests}"
        )
    if counters.get("serve.batch_size") != trace.num_cloudlets:
        raise AssertionError(
            f"{name}: serve.batch_size counter {counters.get('serve.batch_size')} "
            f"!= {trace.num_cloudlets}"
        )
    for gauge in (f"serve.{name}.latency_p50_ms", f"serve.{name}.latency_p99_ms"):
        if gauge not in gauges:
            raise AssertionError(f"{name}: gauge {gauge} missing: {sorted(gauges)}")

    t0 = time.perf_counter()
    assert_bit_identical(spec, trace, report, chunk_sizes=CHUNK_SIZES)
    verify_s = time.perf_counter() - t0
    stats = report.to_dict()
    print(
        f"{name:12s} {stats['requests']} requests ({stats['cloudlets']} cloudlets) "
        f"in {stats['elapsed_s']:6.1f}s  {stats['throughput_rps']:7,.0f} rps  "
        f"p50 {stats['latency_p50_ms']:6.2f} ms  p99 {stats['latency_p99_ms']:7.2f} ms"
    )
    print(
        f"{'':12s} bit-identical to offline StreamingSimulation at chunk sizes "
        f"{CHUNK_SIZES} (verified in {verify_s:.1f}s)"
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = smoke_parser(__doc__)
    parser.add_argument("--requests", type=int, default=50_000)
    parser.add_argument(
        "--rate", type=float, default=1_500.0,
        help="open-loop arrival rate, requests per second",
    )
    parser.add_argument("--vms", type=int, default=500, help="fleet size")
    parser.add_argument(
        "--schedulers", default=",".join(SERVABLE_SCHEDULERS),
        help="comma-separated servable schedulers to gate",
    )
    parser.add_argument(
        "--time-scale", type=float, default=1.0,
        help="0 replays as fast as possible (skips the latency SLO)",
    )
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument(
        "--p50-budget-ms", type=float, default=100.0,
        help="median latency budget (documented SLO)",
    )
    parser.add_argument(
        "--p99-budget-ms", type=float, default=750.0,
        help="tail latency budget (documented SLO)",
    )
    args = parser.parse_args(argv)

    trace = build_trace(
        TraceSpec(requests=args.requests, rate=args.rate, seed=SEED + 1)
    )
    # time_scale=0 collapses the schedule, so latency-from-scheduled-instant
    # no longer means anything — gate only errors/identity in that mode.
    slo = (
        SloSpec(
            p50_ms=args.p50_budget_ms,
            p99_ms=args.p99_budget_ms,
            min_throughput_rps=0.7 * args.rate,
        )
        if args.time_scale > 0
        else SloSpec()
    )
    for name in [s.strip() for s in args.schedulers.split(",") if s.strip()]:
        run_one(name, trace, args, slo)
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    run(main)
