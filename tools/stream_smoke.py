#!/usr/bin/env python
"""Streaming-path smoke: the CI gate for the paper-scale memory budget.

Runs a capped 100,000-cloudlet homogeneous point through every natively
streaming scheduler and asserts the contract the docs promise:

1. **Memory budget** — process peak RSS stays below the documented
   budget (default 512 MiB) for the whole sweep, asserted per scheduler
   (so an O(n) buffer sneaking back into *one* assigner fails fast with
   its name) and once more at the end.  The streaming path holds
   O(num_vms + chunk_size) state, so this passes with room to spare; the
   same point on the in-memory engines allocates O(n) per-cloudlet
   arrays per run.
2. **Chunk invariance** — every bounded metric (and the per-VM
   accumulator arrays) is bit-identical across chunk sizes.
3. **Telemetry** — ``stream.chunks`` / ``stream.peak_rss`` gauges are
   populated when telemetry is on.
4. **Shard invariance** (``--shards N``) — the same points run sharded
   produce bit-identical results, and the merged peak-RSS figure (max
   across shard workers) still fits the budget.  The homogeneous
   workload is constant-cloudlet, so the merge is exact at any shard
   count (see docs/performance.md, "Sharded streaming").

Prints per-scheduler throughput; exit status 0 on success, any contract
violation raises.

Usage::

    PYTHONPATH=src python tools/stream_smoke.py [--cloudlets 100000]
        [--budget-mib 512] [--shards 2]
"""

from __future__ import annotations

import time

from _smoke import run, smoke_parser  # noqa: E402 - puts src/ on sys.path
from repro import obs
from repro.cloud.fast import StreamingSimulation, peak_rss_bytes, shutdown_shard_pool
from repro.obs.telemetry import TELEMETRY
from repro.schedulers.streaming import STREAMING_SCHEDULERS, make_streaming_scheduler
from repro.workloads.streaming import homogeneous_stream

NUM_VMS = 1_000
SEED = 0
#: chunk sizes checked for metric invariance (second one re-run per scheduler).
CHUNK_SIZES = (8_192, 65_536)


def run_one(name: str, num_cloudlets: int, chunk_size: int, shards: int | None = None):
    stream = homogeneous_stream(
        NUM_VMS, num_cloudlets, seed=SEED, chunk_size=chunk_size
    )
    t0 = time.perf_counter()
    result = StreamingSimulation(
        stream, make_streaming_scheduler(name), seed=SEED, shards=shards
    ).run()
    return result, time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = smoke_parser(__doc__)
    parser.add_argument("--cloudlets", type=int, default=100_000)
    parser.add_argument(
        "--budget-mib",
        type=float,
        default=512.0,
        help="peak-RSS ceiling for the whole smoke (documented budget)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="additionally run each point sharded and require bit-equality",
    )
    args = parser.parse_args(argv)
    budget_bytes = int(args.budget_mib * 2**20)
    merged_peak = 0

    with obs.enabled(True):
        for name in sorted(STREAMING_SCHEDULERS):
            baseline, _ = run_one(name, args.cloudlets, CHUNK_SIZES[0])
            result, elapsed = run_one(name, args.cloudlets, CHUNK_SIZES[1])
            for field in ("makespan", "time_imbalance", "total_cost"):
                a, b = getattr(baseline, field), getattr(result, field)
                if a != b:
                    raise AssertionError(
                        f"{name}: {field} not chunk-invariant: {a!r} != {b!r}"
                    )
            if baseline.vm_finish_times.tobytes() != result.vm_finish_times.tobytes():
                raise AssertionError(f"{name}: vm_finish_times not chunk-invariant")
            if baseline.vm_costs.tobytes() != result.vm_costs.tobytes():
                raise AssertionError(f"{name}: vm_costs not chunk-invariant")
            # Per-scheduler gate: ru_maxrss is a process-lifetime high-water
            # mark, so the first scheduler to blow the budget is the one
            # named here — an O(n) regression can't hide behind the
            # whole-sweep check below.
            if result.peak_rss_bytes > budget_bytes:
                raise AssertionError(
                    f"{name}: peak RSS {result.peak_rss_bytes / 2**20:.0f} MiB "
                    f"exceeds the {args.budget_mib:.0f} MiB budget"
                )
            print(
                f"{name:12s} {args.cloudlets} cloudlets in {elapsed:6.2f}s "
                f"({args.cloudlets / elapsed:12,.0f} cloudlets/s)  "
                f"makespan={result.makespan:g}  "
                f"peak RSS {result.peak_rss_bytes / 2**20:.0f} MiB"
            )
            if args.shards:
                sharded, sh_elapsed = run_one(
                    name, args.cloudlets, CHUNK_SIZES[1], shards=args.shards
                )
                for field in ("makespan", "time_imbalance", "total_cost"):
                    a, b = getattr(result, field), getattr(sharded, field)
                    if a != b:
                        raise AssertionError(
                            f"{name}: {field} not shard-invariant: {a!r} != {b!r}"
                        )
                if sharded.vm_finish_times.tobytes() != result.vm_finish_times.tobytes():
                    raise AssertionError(f"{name}: vm_finish_times not shard-invariant")
                if sharded.vm_costs.tobytes() != result.vm_costs.tobytes():
                    raise AssertionError(f"{name}: vm_costs not shard-invariant")
                if sharded.peak_rss_bytes > budget_bytes:
                    raise AssertionError(
                        f"{name} (--shards {args.shards}): worker peak RSS "
                        f"{sharded.peak_rss_bytes / 2**20:.0f} MiB exceeds "
                        f"the {args.budget_mib:.0f} MiB budget"
                    )
                merged_peak = max(merged_peak, sharded.peak_rss_bytes)
                print(
                    f"{'':12s} --shards {args.shards}: {sh_elapsed:6.2f}s, "
                    f"bit-identical, worker peak RSS "
                    f"{sharded.peak_rss_bytes / 2**20:.0f} MiB"
                )
        gauges = TELEMETRY.snapshot().to_dict()["gauges"]
    if args.shards:
        shutdown_shard_pool()
    if "stream.chunks" not in gauges or "stream.peak_rss" not in gauges:
        raise AssertionError(f"stream gauges missing from telemetry: {sorted(gauges)}")

    # With shards, the binding figure is the max across parent and shard
    # workers (a parent-only read would silently under-report).
    peak = max(peak_rss_bytes(), merged_peak)
    print(f"peak RSS: {peak / 2**20:.0f} MiB (budget {args.budget_mib:.0f} MiB)")
    if peak > budget_bytes:
        raise AssertionError(
            f"peak RSS {peak} bytes exceeds the {budget_bytes}-byte budget"
        )
    print("stream smoke OK")
    return 0


if __name__ == "__main__":
    run(main)
